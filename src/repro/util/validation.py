"""Argument-validation helpers.

All public constructors in :mod:`repro` validate their numeric arguments through the
functions here so that error messages are uniform and tests can rely on
:class:`ValueError` being raised for invalid model parameters.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "require",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_rate_matrix",
    "check_symmetric_rates",
    "as_float_array",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_positive(value: float, name: str = "value") -> float:
    """Validate that *value* is a finite, strictly positive scalar and return it."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_non_negative(value: float, name: str = "value") -> float:
    """Validate that *value* is a finite, non-negative scalar and return it."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that *value* lies in the closed interval [0, 1] and return it."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def as_float_array(values: Iterable[float], name: str = "array") -> np.ndarray:
    """Convert *values* to a 1-D float array, validating finiteness."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                     dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr


def check_rate_matrix(matrix: np.ndarray, name: str = "rate matrix") -> np.ndarray:
    """Validate a square matrix of non-negative pairwise rates with a zero diagonal.

    Used for the interaction-rate matrix ``λ_ij`` of Section 2.1: rates must be
    finite, non-negative, and a process never "interacts with itself".
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be square, got shape {matrix.shape}")
    if not np.all(np.isfinite(matrix)):
        raise ValueError(f"{name} must contain only finite values")
    if np.any(matrix < 0.0):
        raise ValueError(f"{name} must be non-negative")
    if np.any(np.diagonal(matrix) != 0.0):
        raise ValueError(f"{name} must have a zero diagonal (no self-interaction)")
    return matrix


def check_symmetric_rates(matrix: np.ndarray, name: str = "rate matrix",
                          atol: float = 1e-12) -> np.ndarray:
    """Validate a symmetric interaction-rate matrix (``λ_ij = λ_ji``)."""
    matrix = check_rate_matrix(matrix, name=name)
    if not np.allclose(matrix, matrix.T, atol=atol):
        raise ValueError(f"{name} must be symmetric (λ_ij = λ_ji)")
    return matrix


def check_index(index: int, size: int, name: str = "index") -> int:
    """Validate an integer index in ``[0, size)`` and return it as ``int``."""
    index = int(index)
    if index < 0 or index >= size:
        raise ValueError(f"{name} must be in [0, {size}), got {index}")
    return index


def check_ordered(values: Sequence[float], name: str = "values") -> None:
    """Validate that *values* are non-decreasing."""
    arr = np.asarray(values, dtype=float)
    if arr.size >= 2 and np.any(np.diff(arr) < 0.0):
        raise ValueError(f"{name} must be non-decreasing")
