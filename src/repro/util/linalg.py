"""Linear-algebra helpers for Markov-chain analysis.

Small, well-tested wrappers around numpy/scipy used by :mod:`repro.markov`:
validation of generator matrices, embedding of a CTMC into a DTMC (uniformisation),
and fundamental-matrix computations for absorbing chains.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "is_generator_matrix",
    "uniformization_rate",
    "embed_dtmc",
    "solve_linear",
    "expected_visits_absorbing",
    "absorption_probabilities",
    "fundamental_matrix",
]


def is_generator_matrix(Q: np.ndarray, atol: float = 1e-9) -> bool:
    """Return True when ``Q`` is a valid CTMC generator.

    A generator has non-negative off-diagonal entries, non-positive diagonal entries
    and row sums equal to zero (within *atol*).
    """
    Q = np.asarray(Q, dtype=float)
    if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
        return False
    off = Q - np.diag(np.diagonal(Q))
    if np.any(off < -atol):
        return False
    if np.any(np.diagonal(Q) > atol):
        return False
    return bool(np.allclose(Q.sum(axis=1), 0.0, atol=atol))


def uniformization_rate(Q: np.ndarray, margin: float = 0.0) -> float:
    """Return a uniformisation constant ``G >= max_i |Q_ii|``.

    The paper's discrete chain :math:`Y_d` (Section 2.3) is exactly the uniformised
    chain with ``G = Σ_{i<j} λ_ij + Σ_k μ_k``; a caller may pass that value directly
    instead, but this helper computes the minimal admissible constant from ``Q``.
    """
    Q = np.asarray(Q, dtype=float)
    rate = float(np.max(-np.diagonal(Q)))
    if rate <= 0.0:
        raise ValueError("generator has no transitions; cannot uniformise")
    return rate * (1.0 + margin)


def embed_dtmc(Q: np.ndarray, rate: float | None = None) -> Tuple[np.ndarray, float]:
    """Uniformise generator ``Q`` into a DTMC transition matrix.

    Returns ``(P, G)`` with ``P = I + Q / G``.  When *rate* is None the minimal
    uniformisation constant is used.
    """
    Q = np.asarray(Q, dtype=float)
    if not is_generator_matrix(Q):
        raise ValueError("Q is not a valid CTMC generator matrix")
    G = uniformization_rate(Q) if rate is None else float(rate)
    if G < np.max(-np.diagonal(Q)) - 1e-12:
        raise ValueError("uniformisation rate is smaller than the fastest exit rate")
    P = np.eye(Q.shape[0]) + Q / G
    # Clean tiny negative round-off.
    P[P < 0.0] = 0.0
    P /= P.sum(axis=1, keepdims=True)
    return P, G


def solve_linear(A: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` with a least-squares fallback for ill-conditioned systems."""
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    try:
        return np.linalg.solve(A, b)
    except np.linalg.LinAlgError:
        return np.linalg.lstsq(A, b, rcond=None)[0]


def fundamental_matrix(P_transient: np.ndarray) -> np.ndarray:
    """Fundamental matrix ``N = (I - T)^{-1}`` of an absorbing DTMC.

    ``P_transient`` is the transient-to-transient block ``T``.  Entry ``N[s, u]`` is
    the expected number of visits to transient state ``u`` before absorption when
    starting in ``s`` (counting the initial occupancy of ``s``).
    """
    T = np.asarray(P_transient, dtype=float)
    if T.ndim != 2 or T.shape[0] != T.shape[1]:
        raise ValueError("transient block must be square")
    identity = np.eye(T.shape[0])
    return np.linalg.solve(identity - T, identity)


def expected_visits_absorbing(P_transient: np.ndarray, start: int) -> np.ndarray:
    """Expected visit counts to each transient state before absorption.

    Equivalent to the row of the fundamental matrix for *start*, computed without
    forming the whole inverse.
    """
    T = np.asarray(P_transient, dtype=float)
    n = T.shape[0]
    if start < 0 or start >= n:
        raise ValueError(f"start state {start} out of range [0, {n})")
    e = np.zeros(n)
    e[start] = 1.0
    # visits v satisfies v = e + v T  =>  v (I - T) = e  =>  (I - T)^T v^T = e^T
    return solve_linear(np.eye(n) - T.T, e)


def absorption_probabilities(P_transient: np.ndarray,
                             P_to_absorbing: np.ndarray,
                             start: int) -> np.ndarray:
    """Probability of being absorbed in each absorbing state, starting from *start*.

    ``P_to_absorbing`` is the transient-to-absorbing block ``R``; the result is the
    *start* row of ``N R``.
    """
    visits = expected_visits_absorbing(P_transient, start)
    R = np.asarray(P_to_absorbing, dtype=float)
    if R.shape[0] != visits.shape[0]:
        raise ValueError("transient and absorbing blocks have mismatched sizes")
    return visits @ R
