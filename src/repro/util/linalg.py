"""Linear-algebra helpers for Markov-chain analysis.

Small, well-tested wrappers around numpy/scipy used by :mod:`repro.markov`:
validation of generator matrices, embedding of a CTMC into a DTMC (uniformisation),
and fundamental-matrix computations for absorbing chains.
"""

from __future__ import annotations

import warnings
from typing import Tuple, Union

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as spla

__all__ = [
    "is_generator_matrix",
    "uniformization_rate",
    "embed_dtmc",
    "solve_linear",
    "expected_visits_absorbing",
    "absorption_probabilities",
    "fundamental_matrix",
]


def is_generator_matrix(Q: np.ndarray, atol: float = 1e-9) -> bool:
    """Return True when ``Q`` is a valid CTMC generator.

    A generator has non-negative off-diagonal entries, non-positive diagonal entries
    and row sums equal to zero (within *atol*).
    """
    Q = np.asarray(Q, dtype=float)
    if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
        return False
    off = Q - np.diag(np.diagonal(Q))
    if np.any(off < -atol):
        return False
    if np.any(np.diagonal(Q) > atol):
        return False
    return bool(np.allclose(Q.sum(axis=1), 0.0, atol=atol))


def uniformization_rate(Q: np.ndarray, margin: float = 0.0) -> float:
    """Return a uniformisation constant ``G >= max_i |Q_ii|``.

    The paper's discrete chain :math:`Y_d` (Section 2.3) is exactly the uniformised
    chain with ``G = Σ_{i<j} λ_ij + Σ_k μ_k``; a caller may pass that value directly
    instead, but this helper computes the minimal admissible constant from ``Q``.
    """
    Q = np.asarray(Q, dtype=float)
    rate = float(np.max(-np.diagonal(Q)))
    if rate <= 0.0:
        raise ValueError("generator has no transitions; cannot uniformise")
    return rate * (1.0 + margin)


def embed_dtmc(Q: np.ndarray, rate: float | None = None) -> Tuple[np.ndarray, float]:
    """Uniformise generator ``Q`` into a DTMC transition matrix.

    Returns ``(P, G)`` with ``P = I + Q / G``.  When *rate* is None the minimal
    uniformisation constant is used.
    """
    Q = np.asarray(Q, dtype=float)
    if not is_generator_matrix(Q):
        raise ValueError("Q is not a valid CTMC generator matrix")
    G = uniformization_rate(Q) if rate is None else float(rate)
    if G < np.max(-np.diagonal(Q)) - 1e-12:
        raise ValueError("uniformisation rate is smaller than the fastest exit rate")
    P = np.eye(Q.shape[0]) + Q / G
    # Clean tiny negative round-off.
    P[P < 0.0] = 0.0
    P /= P.sum(axis=1, keepdims=True)
    return P, G


def _condition_context(A: np.ndarray) -> str:
    """Condition-number context for the singular-fallback warning.

    The 2-norm condition number is only computed for systems small enough that
    the SVD is negligible next to the failed solve itself.
    """
    context = f"shape {A.shape[0]}x{A.shape[1]}"
    if A.shape[0] <= 2048:
        try:
            cond = np.linalg.cond(A)
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate input
            return context
        context += f", cond={cond:.3e}"
    return context


def solve_linear(A: Union[np.ndarray, sparse.spmatrix],
                 b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` (dense or sparse ``A``).

    Singular systems fall back to a least-squares solution; because a singular
    matrix here almost always means a malformed generator (an unreachable or
    non-absorbing state), the fallback emits a :class:`RuntimeWarning` with the
    condition context instead of silently returning the least-squares answer.
    """
    b = np.asarray(b, dtype=float)
    if sparse.issparse(A):
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", spla.MatrixRankWarning)
                return spla.spsolve(A.tocsc(), b)
        except (RuntimeError, spla.MatrixRankWarning):
            # Singular sparse system: densify and take the dense fallback path
            # below (which warns with the condition context).
            A = A.toarray()
    A = np.asarray(A, dtype=float)
    try:
        return np.linalg.solve(A, b)
    except np.linalg.LinAlgError:
        warnings.warn(
            "solve_linear: matrix is singular to working precision "
            f"({_condition_context(A)}); falling back to a least-squares "
            "solution — check the generator for unreachable or non-absorbing "
            "states", RuntimeWarning, stacklevel=2)
        return np.linalg.lstsq(A, b, rcond=None)[0]


def fundamental_matrix(P_transient: np.ndarray) -> np.ndarray:
    """Fundamental matrix ``N = (I - T)^{-1}`` of an absorbing DTMC.

    ``P_transient`` is the transient-to-transient block ``T``.  Entry ``N[s, u]`` is
    the expected number of visits to transient state ``u`` before absorption when
    starting in ``s`` (counting the initial occupancy of ``s``).
    """
    if sparse.issparse(P_transient):
        n = P_transient.shape[0]
        if P_transient.shape[1] != n:
            raise ValueError("transient block must be square")
        lu = spla.splu((sparse.identity(n, format="csc") - P_transient).tocsc())
        return lu.solve(np.eye(n))
    T = np.asarray(P_transient, dtype=float)
    if T.ndim != 2 or T.shape[0] != T.shape[1]:
        raise ValueError("transient block must be square")
    identity = np.eye(T.shape[0])
    return np.linalg.solve(identity - T, identity)


def expected_visits_absorbing(P_transient: np.ndarray, start: int) -> np.ndarray:
    """Expected visit counts to each transient state before absorption.

    Equivalent to the row of the fundamental matrix for *start*, computed without
    forming the whole inverse.
    """
    if sparse.issparse(P_transient):
        n = P_transient.shape[0]
        system = sparse.identity(n, format="csr") - P_transient.T
    else:
        T = np.asarray(P_transient, dtype=float)
        n = T.shape[0]
        system = np.eye(n) - T.T
    if start < 0 or start >= n:
        raise ValueError(f"start state {start} out of range [0, {n})")
    e = np.zeros(n)
    e[start] = 1.0
    # visits v satisfies v = e + v T  =>  v (I - T) = e  =>  (I - T)^T v^T = e^T
    return solve_linear(system, e)


def absorption_probabilities(P_transient: np.ndarray,
                             P_to_absorbing: np.ndarray,
                             start: int) -> np.ndarray:
    """Probability of being absorbed in each absorbing state, starting from *start*.

    ``P_to_absorbing`` is the transient-to-absorbing block ``R``; the result is the
    *start* row of ``N R``.
    """
    visits = expected_visits_absorbing(P_transient, start)
    R = np.asarray(P_to_absorbing, dtype=float)
    if R.shape[0] != visits.shape[0]:
        raise ValueError("transient and absorbing blocks have mismatched sizes")
    return visits @ R
