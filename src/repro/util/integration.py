"""Numerical integration helpers used by the analytic models.

The synchronized-loss formula of Section 3 and several moment checks integrate
functions of the form ``1 - G(t)`` over ``[0, ∞)``; the helpers here wrap
:func:`scipy.integrate.quad` with sensible defaults and provide cumulative
trapezoid integration for empirical densities.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np
from scipy import integrate

__all__ = ["adaptive_quad", "tail_integral", "trapezoid_cumulative", "simpson"]


def adaptive_quad(func: Callable[[float], float], lower: float, upper: float,
                  *, rtol: float = 1e-9, atol: float = 1e-12,
                  limit: int = 200) -> float:
    """Integrate *func* over ``[lower, upper]`` with adaptive quadrature.

    Parameters
    ----------
    func:
        Scalar integrand.
    lower, upper:
        Integration bounds.  ``upper`` may be ``numpy.inf``.
    rtol, atol:
        Requested relative/absolute tolerances.
    limit:
        Maximum number of subintervals handed to :func:`scipy.integrate.quad`.
    """
    value, _err = integrate.quad(func, lower, upper, epsrel=rtol, epsabs=atol,
                                 limit=limit)
    return float(value)


def tail_integral(survival: Callable[[float], float], *, rtol: float = 1e-9,
                  upper: float = np.inf) -> float:
    """Integrate a survival function ``P(T > t)`` over ``[0, upper)``.

    For a non-negative random variable ``T`` this equals ``E[min(T, upper)]`` and,
    with ``upper=inf``, simply ``E[T]`` — the identity the paper uses to express the
    expected synchronization wait ``E[Z] = ∫ (1 - G(t)) dt``.
    """
    return adaptive_quad(survival, 0.0, upper, rtol=rtol)


def trapezoid_cumulative(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Cumulative trapezoid integral of samples ``y`` over grid ``x``.

    Returns an array of the same length as ``x`` whose first element is 0.  Useful
    for turning a sampled density :math:`f_X(t)` into a CDF.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    if x.size < 2:
        return np.zeros_like(x)
    increments = 0.5 * (y[1:] + y[:-1]) * np.diff(x)
    return np.concatenate(([0.0], np.cumsum(increments)))


def simpson(x: np.ndarray, y: np.ndarray) -> float:
    """Composite Simpson integral of sampled values (falls back to trapezoid)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    if x.size < 3:
        return float(np.trapezoid(y, x))
    return float(integrate.simpson(y, x=x))
