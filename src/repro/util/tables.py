"""Plain-text table rendering for experiment reports.

The benchmark harness prints every regenerated paper table/figure as an ASCII table
so the run log itself is the artefact; this module keeps that formatting in one
place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["AsciiTable", "format_float"]


def format_float(value: float, digits: int = 4) -> str:
    """Format a float compactly: fixed precision, trimmed of noise."""
    if value != value:  # NaN
        return "nan"
    if abs(value) >= 1e6 or (abs(value) < 1e-4 and value != 0.0):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}f}"


class AsciiTable:
    """Simple column-aligned ASCII table builder.

    >>> t = AsciiTable(["case", "E[X]"])
    >>> t.add_row(["1", 2.5])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    case | E[X]
    -----+-------
    1    | 2.5000
    """

    def __init__(self, headers: Sequence[str], *, float_digits: int = 4) -> None:
        self.headers: List[str] = [str(h) for h in headers]
        self.rows: List[List[str]] = []
        self.float_digits = int(float_digits)

    def add_row(self, row: Iterable[object]) -> None:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(format_float(cell, self.float_digits))
            else:
                cells.append(str(cell))
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.headers)} columns")
        self.rows.append(cells)

    def add_rows(self, rows: Iterable[Iterable[object]]) -> None:
        for row in rows:
            self.add_row(row)

    def column_widths(self) -> List[int]:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for idx, cell in enumerate(row):
                widths[idx] = max(widths[idx], len(cell))
        return widths

    def render(self) -> str:
        widths = self.column_widths()
        def fmt_line(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

        sep = "-+-".join("-" * width for width in widths)
        lines = [fmt_line(self.headers), sep]
        lines.extend(fmt_line(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
