"""Service-vs-direct bit-identity: same metrics (to the hex digit), same keys.

The service is a routing layer, not an engine: whatever mixture of dedup,
LRU, batching and store read-through serves a cell, the payload must be
byte-for-byte what a direct ``repro.evaluate`` call computes, stored under
the identical canonical key.  Equality is asserted on ``float.hex()``
snapshots — a formatting-stable encoding where any bit difference shows.
"""

import asyncio

import pytest

from repro.api import StudySpec, SystemSpec, evaluate
from repro.api.facade import evaluate_record
from repro.report import ResultStore
from repro.service import EvaluationService


def hexify(value):
    """Recursively encode floats as ``float.hex()`` for bit-level equality."""
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, dict):
        return {k: hexify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [hexify(v) for v in value]
    return value


def _submit(service, spec, method="auto"):
    async def main():
        return await service.submit_cell(spec, method)
    return asyncio.run(main())


ANALYTIC = StudySpec(system=SystemSpec.symmetric(5, 1.0, 0.5),
                     metrics=("mean", "variance"))
MC = StudySpec(system=SystemSpec.symmetric(5, 1.0, 0.5),
               metrics=("mean", "std"), seed=20240, reps=128)
STRATEGY = StudySpec(
    system=SystemSpec.strategy("synchronized", 3, mu=1.0, lam=1.0,
                               work=12.0, error_rate=0.04,
                               sync_interval=2.0),
    metrics=("makespan", "rollbacks", "lost_work"), seed=11, reps=2)


class TestBitIdentity:
    @pytest.mark.parametrize("spec,method", [
        (ANALYTIC, "analytic"),
        (MC, "mc"),
        (MC, "des"),
    ], ids=["analytic", "mc", "des"])
    def test_metrics_hex_identical_to_direct(self, spec, method):
        direct = evaluate(spec, method)
        outcome = _submit(EvaluationService(), spec, method)
        assert hexify(outcome.evaluation.metrics) == hexify(direct.metrics)
        assert hexify(outcome.evaluation.to_dict()) == \
            hexify(direct.to_dict())

    def test_strategy_hex_identical_to_direct(self):
        direct = evaluate(STRATEGY, "strategy")
        outcome = _submit(EvaluationService(), STRATEGY, "strategy")
        assert hexify(outcome.evaluation.to_dict()) == \
            hexify(direct.to_dict())

    def test_service_key_matches_canonical_key(self):
        service = EvaluationService()
        for spec, method in ((ANALYTIC, "analytic"), (MC, "mc")):
            outcome = _submit(service, spec, method)
            assert outcome.key == spec.canonical_key(method)


class TestStoreInterop:
    def test_service_store_record_identical_to_direct(self, tmp_path):
        """The service writes the same record a store-attached direct
        evaluation writes — same key, same payload bits."""
        direct_store = ResultStore(str(tmp_path / "direct"))
        result = evaluate_record(MC, "mc", store=direct_store)
        direct_cell = result.cells[0]

        service = EvaluationService(store=str(tmp_path / "service"))
        outcome = _submit(service, MC, "mc")
        assert outcome.key == direct_cell.key
        service_hit = service.store.get(outcome.key)
        direct_hit = direct_store.get(direct_cell.key)
        assert service_hit is not None and direct_hit is not None
        assert hexify(service_hit.result.to_dict()) == \
            hexify(direct_hit.result.to_dict())
        assert service_hit.seed == direct_hit.seed
        assert service_hit.reps == direct_hit.reps
        assert service_hit.params == direct_hit.params

    def test_direct_evaluation_reads_service_results(self, tmp_path):
        """A store populated by the service serves direct evaluations."""
        root = str(tmp_path)
        service = EvaluationService(store=root)
        outcome = _submit(service, MC, "mc")
        # Direct evaluation against the shard holding the cell hits the
        # cache (the runner consumes any key/get/put store).
        result = evaluate_record(MC, "mc", store=service.store)
        assert result.cells[0].cached is True
        assert hexify(result.cells[0].evaluation.metrics) == \
            hexify(outcome.evaluation.metrics)

    def test_service_reads_flat_store_results(self, tmp_path):
        """Pre-existing flat-store cells serve submissions (read-through)."""
        root = str(tmp_path)
        flat = ResultStore(root)
        evaluate_record(MC, "mc", store=flat)
        service = EvaluationService(store=root)
        outcome = _submit(service, MC, "mc")
        assert outcome.source == "store"
        direct = evaluate(MC, "mc")
        assert hexify(outcome.evaluation.metrics) == hexify(direct.metrics)

    def test_deterministic_cells_cache_across_layers(self, tmp_path):
        service = EvaluationService(store=str(tmp_path))
        first = _submit(service, ANALYTIC, "analytic")
        assert first.source == "computed"
        second = _submit(service, ANALYTIC, "analytic")
        assert second.source == "lru"
        # A fresh service over the same store reads it back from disk.
        fresh = EvaluationService(store=str(tmp_path))
        third = _submit(fresh, ANALYTIC, "analytic")
        assert third.source == "store"
        assert hexify(third.evaluation.metrics) == \
            hexify(first.evaluation.metrics)

    def test_rel_tol_is_restamped_per_requester(self, tmp_path):
        from dataclasses import replace
        service = EvaluationService(store=str(tmp_path))
        _submit(service, MC, "mc")
        loose = replace(MC, rel_tol=0.2)
        outcome = _submit(service, loose, "mc")
        assert outcome.source in ("lru", "store")   # same identity
        assert outcome.evaluation.rel_tol == 0.2
