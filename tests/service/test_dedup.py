"""Single-flight dedup: N concurrent identical submissions, one execution."""

import asyncio

import pytest

from repro.api import StudySpec, SystemSpec
from repro.runner.backends import SerialBackend
from repro.service import EvaluationService, ServiceClient, SingleFlight


class CountingBackend(SerialBackend):
    """Serial backend that counts ``map`` dispatches and mapped tasks."""

    def __init__(self):
        self.dispatches = 0
        self.tasks = 0

    def map(self, func, tasks):
        tasks = list(tasks)
        self.dispatches += 1
        self.tasks += len(tasks)
        return super().map(func, tasks)


def _mc_spec(seed=7, n=5):
    return StudySpec(system=SystemSpec.symmetric(n, 1.0, 0.5),
                     metrics=("mean",), seed=seed, reps=64)


def _analytic_spec(n=5):
    return StudySpec(system=SystemSpec.symmetric(n, 1.0, 0.5),
                     metrics=("mean",))


class TestSingleFlightPrimitive:
    def test_leader_then_joiners(self):
        async def main():
            flights = SingleFlight()
            future, leader = flights.lease("k")
            assert leader is True
            joined, joined_leader = flights.lease("k")
            assert joined_leader is False
            assert joined is future
            future.set_result(42)
            assert await joined == 42
            await asyncio.sleep(0)            # done-callback unregisters
            assert "k" not in flights
            assert flights.stats() == {"in_flight": 0, "flights": 1,
                                       "joined": 1}
        asyncio.run(main())

    def test_key_can_fly_again_after_landing(self):
        async def main():
            flights = SingleFlight()
            first, _ = flights.lease("k")
            first.set_result(1)
            await asyncio.sleep(0)
            second, leader = flights.lease("k")
            assert leader is True
            assert second is not first
            second.set_result(2)
        asyncio.run(main())


class TestServiceDedup:
    def test_concurrent_identical_submissions_execute_once(self):
        backend = CountingBackend()

        async def main():
            service = EvaluationService(backend=backend)
            spec = _mc_spec()
            outcomes = await asyncio.gather(
                *(service.submit_cell(spec, "mc") for _ in range(8)))
            return service, outcomes

        service, outcomes = asyncio.run(main())
        assert backend.dispatches == 1
        sources = sorted(outcome.source for outcome in outcomes)
        assert sources.count("computed") == 1
        assert sources.count("inflight") == 7
        metrics = {repr(outcome.evaluation.metrics) for outcome in outcomes}
        assert len(metrics) == 1              # everyone got the same result
        assert service.flights.stats()["joined"] == 7

    def test_multiple_tenants_share_one_flight(self):
        backend = CountingBackend()

        async def main():
            service = EvaluationService(backend=backend)
            clients = [ServiceClient(service, tenant=f"t{i}")
                       for i in range(4)]
            spec = _mc_spec()
            outs = await asyncio.gather(
                *(client.submit(spec, "mc") for client in clients))
            return service, outs

        service, outs = asyncio.run(main())
        assert backend.dispatches == 1
        assert service.cells_executed == 1
        assert all(client_out.cells[0].key == outs[0].cells[0].key
                   for client_out in outs)

    def test_seedless_stochastic_cells_never_dedup(self):
        backend = CountingBackend()

        async def main():
            service = EvaluationService(backend=backend)
            spec = _mc_spec(seed=None)
            outcomes = await asyncio.gather(
                *(service.submit_cell(spec, "mc") for _ in range(3)))
            return service, outcomes

        service, outcomes = asyncio.run(main())
        # One batch (they coalesce), but three distinct executions.
        assert service.cells_executed == 3
        assert all(outcome.source == "computed" for outcome in outcomes)
        assert all(outcome.key is None for outcome in outcomes)
        assert service.flights.stats()["flights"] == 0

    def test_resubmission_after_landing_hits_the_lru(self):
        async def main():
            service = EvaluationService()
            spec = _analytic_spec()
            first = await service.submit_cell(spec)
            second = await service.submit_cell(spec)
            return first, second, service

        first, second, service = asyncio.run(main())
        assert first.source == "computed"
        assert second.source == "lru"
        assert second.evaluation.metrics == first.evaluation.metrics
        assert service.stats()["dedup_hit_rate"] == 0.5

    def test_force_recomputes_and_refreshes(self):
        backend = CountingBackend()

        async def main():
            service = EvaluationService(backend=backend)
            spec = _mc_spec()
            first = await service.submit_cell(spec, "mc")
            forced = await service.submit_cell(spec, "mc", force=True)
            again = await service.submit_cell(spec, "mc")
            return first, forced, again

        first, forced, again = asyncio.run(main())
        assert forced.source == "computed"
        assert backend.dispatches == 2
        assert again.source == "lru"
        # Seeded recompute reproduces the identical result.
        assert forced.evaluation.metrics == first.evaluation.metrics
