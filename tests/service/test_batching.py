"""Admission batching: window coalescing, one map per worker group."""

import asyncio

import pytest

from repro.api import StudySpec, SystemSpec
from repro.runner.backends import SerialBackend
from repro.service import EvaluationService
from repro.service.batching import (AdmissionBatcher, BatchCell,
                                    ExecutedCell, execute_cells)


class CountingBackend(SerialBackend):
    """Serial backend that counts ``map`` dispatches."""

    def __init__(self):
        self.dispatches = 0

    def map(self, func, tasks):
        self.dispatches += 1
        return super().map(func, tasks)


def _analytic(n):
    return StudySpec(system=SystemSpec.symmetric(n, 1.0, 0.5),
                     metrics=("mean",))


def _mc(n, seed=7):
    return StudySpec(system=SystemSpec.symmetric(n, 1.0, 0.5),
                     metrics=("mean",), seed=seed, reps=64)


class TestAdmissionBatcher:
    def test_window_coalesces_admissions(self):
        flushed = []

        async def main():
            async def flush(batch):
                flushed.append(batch)
            batcher = AdmissionBatcher(flush, window=0.02, max_batch=100)
            for i in range(5):
                batcher.admit(i)
            assert len(batcher) == 5          # nothing flushed yet
            await asyncio.sleep(0.1)
            assert flushed == [[0, 1, 2, 3, 4]]
            stats = batcher.stats()
            assert stats["batches"] == 1
            assert stats["mean_occupancy"] == 5.0
        asyncio.run(main())

    def test_max_batch_flushes_immediately(self):
        flushed = []

        async def main():
            async def flush(batch):
                flushed.append(list(batch))
            batcher = AdmissionBatcher(flush, window=10.0, max_batch=3)
            for i in range(7):
                batcher.admit(i)
            await asyncio.sleep(0)            # let flush tasks run
            await batcher.drain()
            await asyncio.sleep(0)
        asyncio.run(main())
        assert [len(batch) for batch in flushed] == [3, 3, 1]

    def test_parameter_validation(self):
        async def noop(batch):
            pass
        with pytest.raises(ValueError):
            AdmissionBatcher(noop, window=-1)
        with pytest.raises(ValueError):
            AdmissionBatcher(noop, max_batch=0)


class TestExecuteCells:
    def test_deterministic_burst_is_one_dispatch(self):
        backend = CountingBackend()
        cells = [BatchCell(spec=_analytic(n), method="analytic")
                 for n in range(2, 8)]
        outcomes, dispatches = execute_cells(backend, cells)
        assert dispatches == 1
        assert backend.dispatches == 1
        assert all(isinstance(outcome, ExecutedCell) for outcome in outcomes)

    def test_mixed_engines_one_dispatch_per_worker_group(self):
        backend = CountingBackend()
        cells = ([BatchCell(spec=_analytic(n), method="analytic")
                  for n in (3, 4)]
                 + [BatchCell(spec=_mc(n), method="mc") for n in (3, 4)]
                 + [BatchCell(spec=_mc(5), method="des")])
        outcomes, dispatches = execute_cells(backend, cells)
        # analytic -> 1 map; mc and des share one worker -> 1 map.
        assert dispatches == 2
        assert backend.dispatches == 2
        assert all(isinstance(outcome, ExecutedCell) for outcome in outcomes)

    def test_bad_cell_poisons_only_itself(self):
        backend = CountingBackend()
        good = BatchCell(spec=_mc(4), method="mc")
        bad = BatchCell(spec=_mc(3), method="no_such_engine")
        outcomes, _dispatches = execute_cells(backend, [good, bad])
        assert isinstance(outcomes[0], ExecutedCell)
        assert isinstance(outcomes[1], Exception)


class TestServiceBatching:
    def test_distinct_cell_burst_coalesces_into_one_map(self):
        backend = CountingBackend()

        async def main():
            service = EvaluationService(backend=backend, batch_window=0.05)
            specs = [_analytic(n) for n in range(2, 12)]
            return await asyncio.gather(
                *(service.submit_cell(spec) for spec in specs)), service

        outcomes, service = asyncio.run(main())
        assert backend.dispatches == 1
        assert service.stats()["batching"]["mean_occupancy"] == 10.0
        assert len({outcome.key for outcome in outcomes}) == 10

    def test_sweep_submission_coalesces(self):
        backend = CountingBackend()

        async def main():
            service = EvaluationService(backend=backend, batch_window=0.05)
            sweep = StudySpec(system=SystemSpec.symmetric(5, 1.0, 0.5),
                              metrics=("mean",),
                              sweep={"n": [3, 4, 5, 6]})
            return await service.submit(sweep)

        outcome = asyncio.run(main())
        assert len(outcome.cells) == 4
        assert backend.dispatches == 1

    def test_engine_error_rejects_only_its_cells(self):
        async def main():
            service = EvaluationService(batch_window=0.02)
            good = _analytic(4)
            # Strategy metrics on a symmetric system -> engine-side error.
            results = await asyncio.gather(
                service.submit_cell(good),
                service.submit_cell(_mc(3), "no_such_engine"),
                return_exceptions=True)
            return results

        ok, err = asyncio.run(main())
        assert not isinstance(ok, Exception)
        assert isinstance(err, Exception)
