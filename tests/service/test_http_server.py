"""HTTP front end: routes, framing, concurrent clients, error mapping."""

import asyncio
import json

import pytest

from repro.api import StudySpec, SystemSpec, evaluate
from repro.service import (EvaluationServer, EvaluationService,
                           ServiceHTTPClient)


def _spec_dict(n=5, **extra):
    payload = {"system": {"kind": "symmetric", "n": n, "mu": 1.0,
                          "lam": 0.5},
               "metrics": ["mean"]}
    payload.update(extra)
    return payload


def _run_with_server(coro_factory, **service_kwargs):
    """Start a server on an ephemeral port, run the coroutine, tear down."""
    async def main():
        service = EvaluationService(**service_kwargs)
        server = EvaluationServer(service, port=0)
        await server.start()
        try:
            return await coro_factory(server)
        finally:
            await server.stop()
    return asyncio.run(main())


class TestRoutes:
    def test_health(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            payload = await client.health()
            await client.close()
            return payload

        assert _run_with_server(scenario) == {"status": "ok",
                                              "service": "repro"}

    def test_evaluate_round_trip(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            status, payload = await client.evaluate(_spec_dict())
            await client.close()
            return status, payload

        status, payload = _run_with_server(scenario)
        assert status == 200
        assert payload["ok"] is True
        cell = payload["cells"][0]
        assert cell["source"] == "computed"
        assert cell["key"]
        direct = evaluate(StudySpec.from_dict(_spec_dict()))
        value = cell["result"]["rows"][0]["values"]["value"]
        assert value == direct.metrics["mean"]

    def test_stats_reflects_traffic(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            await client.evaluate(_spec_dict())
            await client.evaluate(_spec_dict())      # LRU hit
            stats = await client.stats()
            await client.close()
            return stats

        stats = _run_with_server(scenario)
        assert stats["cells_submitted"] == 2
        assert stats["cells_executed"] == 1
        assert stats["lru"]["hits"] == 1
        assert stats["dedup_hit_rate"] == 0.5

    def test_unknown_route_404(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            status, _payload = await client.request("GET", "/nope")
            await client.close()
            return status

        assert _run_with_server(scenario) == 404

    def test_wrong_method_405(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            status, _payload = await client.request("POST", "/v1/health",
                                                    {"x": 1})
            await client.close()
            return status

        assert _run_with_server(scenario) == 405


class TestErrorMapping:
    def test_bad_spec_is_400(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            status, payload = await client.evaluate(
                {"system": {"kind": "nope"}})
            await client.close()
            return status, payload

        status, payload = _run_with_server(scenario)
        assert status == 400
        assert payload["ok"] is False
        assert "nope" in payload["error"]

    def test_non_json_body_is_400(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            status, payload = await client.request("POST", "/v1/evaluate",
                                                   None)
            await client.close()
            return status, payload

        status, payload = _run_with_server(scenario)
        assert status == 400
        assert payload["ok"] is False


class TestMultiTenant:
    def test_three_clients_identical_spec_single_flight(self):
        async def scenario(server):
            clients = [ServiceHTTPClient(port=server.port) for _ in range(3)]
            spec = _spec_dict(seed=7, reps=64)
            results = await asyncio.gather(
                *(client.evaluate(spec, method="mc") for client in clients))
            stats = await clients[0].stats()
            for client in clients:
                await client.close()
            return results, stats

        results, stats = _run_with_server(scenario, batch_window=0.05)
        assert all(status == 200 for status, _payload in results)
        values = {json.dumps(payload["cells"][0]["result"], sort_keys=True)
                  for _status, payload in results}
        assert len(values) == 1               # same bits for every tenant
        assert stats["cells_executed"] == 1   # one backend execution
        sources = sorted(payload["cells"][0]["source"]
                         for _status, payload in results)
        assert sources.count("computed") == 1

    def test_keep_alive_serves_many_requests_per_connection(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            statuses = []
            for n in (3, 4, 5):
                status, _payload = await client.evaluate(_spec_dict(n=n))
                statuses.append(status)
            await client.close()
            return statuses, server.requests

        statuses, requests = _run_with_server(scenario)
        assert statuses == [200, 200, 200]
        assert requests == 3
