"""HTTP front end: routes, framing, concurrent clients, error mapping."""

import asyncio
import json

import pytest

from repro.api import StudySpec, SystemSpec, evaluate
from repro.service import (EvaluationServer, EvaluationService,
                           ServiceHTTPClient)


def _spec_dict(n=5, **extra):
    payload = {"system": {"kind": "symmetric", "n": n, "mu": 1.0,
                          "lam": 0.5},
               "metrics": ["mean"]}
    payload.update(extra)
    return payload


def _run_with_server(coro_factory, **service_kwargs):
    """Start a server on an ephemeral port, run the coroutine, tear down."""
    async def main():
        service = EvaluationService(**service_kwargs)
        server = EvaluationServer(service, port=0)
        await server.start()
        try:
            return await coro_factory(server)
        finally:
            await server.stop()
    return asyncio.run(main())


class TestRoutes:
    def test_health(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            payload = await client.health()
            await client.close()
            return payload

        assert _run_with_server(scenario) == {"status": "ok",
                                              "service": "repro"}

    def test_evaluate_round_trip(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            status, payload = await client.evaluate(_spec_dict())
            await client.close()
            return status, payload

        status, payload = _run_with_server(scenario)
        assert status == 200
        assert payload["ok"] is True
        cell = payload["cells"][0]
        assert cell["source"] == "computed"
        assert cell["key"]
        direct = evaluate(StudySpec.from_dict(_spec_dict()))
        value = cell["result"]["rows"][0]["values"]["value"]
        assert value == direct.metrics["mean"]

    def test_stats_reflects_traffic(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            await client.evaluate(_spec_dict())
            await client.evaluate(_spec_dict())      # LRU hit
            stats = await client.stats()
            await client.close()
            return stats

        stats = _run_with_server(scenario)
        assert stats["cells_submitted"] == 2
        assert stats["cells_executed"] == 1
        assert stats["lru"]["hits"] == 1
        assert stats["dedup_hit_rate"] == 0.5

    def test_unknown_route_404(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            status, _payload = await client.request("GET", "/nope")
            await client.close()
            return status

        assert _run_with_server(scenario) == 404

    def test_wrong_method_405(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            status, _payload = await client.request("POST", "/v1/health",
                                                    {"x": 1})
            await client.close()
            return status

        assert _run_with_server(scenario) == 405


class TestErrorMapping:
    def test_bad_spec_is_400(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            status, payload = await client.evaluate(
                {"system": {"kind": "nope"}})
            await client.close()
            return status, payload

        status, payload = _run_with_server(scenario)
        assert status == 400
        assert payload["ok"] is False
        assert "nope" in payload["error"]

    def test_non_json_body_is_400(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            status, payload = await client.request("POST", "/v1/evaluate",
                                                   None)
            await client.close()
            return status, payload

        status, payload = _run_with_server(scenario)
        assert status == 400
        assert payload["ok"] is False


class TestOversizedBody:
    # Regression: declaring Content-Length > MAX_BODY_BYTES used to raise
    # IncompleteReadError inside _read_request, which _handle swallowed as
    # "client went away" — the connection closed with no response and the
    # 413 in _REASONS was unreachable.

    def test_oversized_body_gets_a_real_413(self):
        from repro.service.server import MAX_BODY_BYTES

        async def scenario(server):
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           server.port)
            body = b"x" * (MAX_BODY_BYTES + 1)
            writer.write((f"POST /v1/evaluate HTTP/1.1\r\n"
                          f"Host: 127.0.0.1:{server.port}\r\n"
                          "Content-Type: application/json\r\n"
                          f"Content-Length: {len(body)}\r\n"
                          "\r\n").encode("latin-1") + body)
            await writer.drain()
            status_line = await reader.readline()
            headers = {}
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            raw = await reader.readexactly(int(headers["content-length"]))
            trailing = await reader.read()       # server must close after
            writer.close()
            await writer.wait_closed()
            return status_line, headers, raw, trailing

        status_line, headers, raw, trailing = _run_with_server(scenario)
        assert b"413" in status_line and b"Payload Too Large" in status_line
        assert headers["connection"] == "close"
        payload = json.loads(raw.decode("utf-8"))
        assert payload["ok"] is False
        assert "exceeds" in payload["error"]
        assert trailing == b""                   # connection really closed

    def test_client_sees_the_413_payload(self):
        from repro.service.server import MAX_BODY_BYTES

        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            status, payload = await client.evaluate(
                {"padding": "x" * (MAX_BODY_BYTES + 1)})
            # The 413 came with Connection: close; the same client object
            # must transparently reconnect for the next request.
            health = await client.health()
            await client.close()
            return status, payload, health

        status, payload, health = _run_with_server(scenario)
        assert status == 413
        assert payload["ok"] is False
        assert health == {"status": "ok", "service": "repro"}


class TestClientConnectionHandling:
    # Regression: the client never read the response's Connection header and
    # only reconnected on is_closing(), so the request after a server
    # `Connection: close` raced the FIN and could die with an IndexError
    # from parsing an empty status line.

    def test_client_honors_server_connection_close(self):
        async def handler(reader, writer):
            handler.connections += 1
            while True:
                line = await reader.readline()
                if not line:
                    break
                if line in (b"\r\n", b"\n"):
                    body = b'{"status": "ok"}'
                    writer.write((f"HTTP/1.1 200 OK\r\n"
                                  "Content-Type: application/json\r\n"
                                  f"Content-Length: {len(body)}\r\n"
                                  "Connection: close\r\n"
                                  "\r\n").encode("latin-1") + body)
                    await writer.drain()
                    writer.close()
                    await writer.wait_closed()
                    return
        handler.connections = 0

        async def main():
            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = ServiceHTTPClient(port=port)
            statuses = [(await client.request("GET", "/v1/health"))[0]
                        for _ in range(3)]
            await client.close()
            server.close()
            await server.wait_closed()
            return statuses

        statuses = asyncio.run(main())
        assert statuses == [200, 200, 200]
        assert handler.connections == 3          # one connection per response

    def test_empty_status_line_raises_connection_error(self):
        async def handler(reader, writer):
            await reader.readline()              # swallow the request line
            writer.close()                       # hang up with no response
            await writer.wait_closed()

        async def main():
            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = ServiceHTTPClient(port=port)
            with pytest.raises(ConnectionError,
                               match="before sending a status line"):
                await client.request("GET", "/v1/health")
            await client.close()
            server.close()
            await server.wait_closed()

        asyncio.run(main())


class TestMultiTenant:
    def test_three_clients_identical_spec_single_flight(self):
        async def scenario(server):
            clients = [ServiceHTTPClient(port=server.port) for _ in range(3)]
            spec = _spec_dict(seed=7, reps=64)
            results = await asyncio.gather(
                *(client.evaluate(spec, method="mc") for client in clients))
            stats = await clients[0].stats()
            for client in clients:
                await client.close()
            return results, stats

        results, stats = _run_with_server(scenario, batch_window=0.05)
        assert all(status == 200 for status, _payload in results)
        values = {json.dumps(payload["cells"][0]["result"], sort_keys=True)
                  for _status, payload in results}
        assert len(values) == 1               # same bits for every tenant
        assert stats["cells_executed"] == 1   # one backend execution
        sources = sorted(payload["cells"][0]["source"]
                         for _status, payload in results)
        assert sources.count("computed") == 1

    def test_keep_alive_serves_many_requests_per_connection(self):
        async def scenario(server):
            client = ServiceHTTPClient(port=server.port)
            statuses = []
            for n in (3, 4, 5):
                status, _payload = await client.evaluate(_spec_dict(n=n))
                statuses.append(status)
            await client.close()
            return statuses, server.requests

        statuses, requests = _run_with_server(scenario)
        assert statuses == [200, 200, 200]
        assert requests == 3
