"""ResultLRU: hit/miss accounting, recency order, bounded eviction."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.service.cache import CachedResult, ResultLRU


def _entry(key, value=1.0):
    result = ExperimentResult(name="lru_fixture", paper_reference="fixture",
                              columns=["a"], notes="")
    result.add_row("row", a=value)
    return CachedResult(key=key, result=result, elapsed_seconds=0.1)


class TestResultLRU:
    def test_round_trip_and_counters(self):
        lru = ResultLRU(maxsize=4)
        assert lru.get("k") is None
        lru.put(_entry("k", 2.0))
        hit = lru.get("k")
        assert hit is not None
        assert hit.result.rows[0].values["a"] == 2.0
        assert lru.stats() == {"size": 1, "maxsize": 4, "hits": 1,
                               "misses": 1, "evictions": 0}

    def test_eviction_is_least_recently_used(self):
        lru = ResultLRU(maxsize=2)
        lru.put(_entry("a"))
        lru.put(_entry("b"))
        assert lru.get("a") is not None       # refresh 'a'; 'b' is coldest
        lru.put(_entry("c"))
        assert "b" not in lru
        assert "a" in lru and "c" in lru
        assert lru.evictions == 1

    def test_put_refreshes_recency(self):
        lru = ResultLRU(maxsize=2)
        lru.put(_entry("a"))
        lru.put(_entry("b"))
        lru.put(_entry("a", 3.0))             # refresh + replace
        lru.put(_entry("c"))
        assert "b" not in lru
        assert lru.get("a").result.rows[0].values["a"] == 3.0

    def test_maxsize_zero_disables(self):
        lru = ResultLRU(maxsize=0)
        lru.put(_entry("a"))
        assert len(lru) == 0
        assert lru.get("a") is None

    def test_invalidate(self):
        lru = ResultLRU(maxsize=4)
        lru.put(_entry("a"))
        assert lru.invalidate("a") is True
        assert lru.invalidate("a") is False
        assert lru.get("a") is None

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            ResultLRU(maxsize=-1)
