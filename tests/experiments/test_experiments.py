"""Tests for the experiment harness (paper artefact regeneration)."""

import numpy as np
import pytest

from repro.experiments.ablation import run_detector_ablation, run_solver_ablation
from repro.experiments.common import ExperimentResult
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure5_full_chain import run_figure5_full_chain
from repro.experiments.figure6 import figure6_curves, run_figure6
from repro.experiments.heterogeneous_sweep import (heterogeneous_parameters,
                                                   run_heterogeneous_sweep)
from repro.experiments.prp_costs import run_prp_costs
from repro.experiments.sync_loss import run_sync_loss, run_sync_loss_validation
from repro.experiments.table1 import PAPER_TABLE1, run_table1
from repro.experiments.validation import run_validation


class TestResultContainer:
    def test_add_row_requires_all_columns(self):
        result = ExperimentResult(name="x", paper_reference="y", columns=["a", "b"])
        with pytest.raises(ValueError):
            result.add_row("row", a=1.0)
        result.add_row("row", a=1.0, b=2.0)
        assert result.column("b") == [2.0]
        assert result.row("row").get("a") == 1.0
        with pytest.raises(KeyError):
            result.row("missing")

    def test_render_contains_reference_and_notes(self):
        result = ExperimentResult(name="x", paper_reference="Table 9",
                                  columns=["a"], notes="hello")
        result.add_row("r", a=1.0)
        text = result.render()
        assert "Table 9" in text and "hello" in text


class TestTable1:
    def test_matches_paper_EL_columns(self):
        result = run_table1(simulate=False)
        for case in range(1, 6):
            row = result.rows[case - 1]
            paper = PAPER_TABLE1[case]
            assert row.get("E[L1]") == pytest.approx(paper[1], abs=2e-3)
            if case != 5:
                # Case 5's printed E(L2)=3.111 is inconsistent with the printed
                # ΣE(L)=9.933=3·3.311 and with E(L_i)=μ_i·E[X]; we reproduce 3.311
                # and document the cell as a typo (see EXPERIMENTS.md).
                assert row.get("E[L2]") == pytest.approx(paper[2], abs=2e-3)
            else:
                assert row.get("E[L2]") == pytest.approx(3.311, abs=2e-3)
            assert row.get("E[L3]") == pytest.approx(paper[3], abs=2e-3)
            assert row.get("sum E[L]") == pytest.approx(paper[4], abs=5e-3)

    def test_EX_within_paper_simulation_tolerance(self):
        result = run_table1(simulate=False)
        for case in range(1, 6):
            row = result.rows[case - 1]
            assert row.get("E[X]") == pytest.approx(PAPER_TABLE1[case][0], rel=0.07)

    def test_minimum_at_balanced_mu(self):
        result = run_table1(simulate=False)
        # Cases 1 and 3 (balanced mu) have smaller E[X] and sum E[L] than 2/4/5.
        balanced = [result.rows[0], result.rows[2]]
        skewed = [result.rows[1], result.rows[3], result.rows[4]]
        assert max(r.get("E[X]") for r in balanced) < \
            min(r.get("E[X]") for r in skewed)
        assert max(r.get("sum E[L]") for r in balanced) < \
            min(r.get("sum E[L]") for r in skewed)

    def test_simulated_columns_close_to_analytic(self):
        result = run_table1(simulate=True, n_intervals=3000, seed=5)
        for row in result.rows:
            assert row.get("sim E[X]") == pytest.approx(row.get("E[X]"), rel=0.1)


class TestFigure5:
    def test_monotone_in_rho_and_steep_in_n(self):
        result = run_figure5(n_values=(2, 3, 4, 5), rho_values=(0.5, 1.0, 2.0))
        for row in result.rows:
            assert row.get("E[X] rho=0.5") <= row.get("E[X] rho=1") \
                <= row.get("E[X] rho=2")
        high_rho = result.column("E[X] rho=2")
        assert high_rho[-1] / high_rho[0] > 5.0     # drastic growth with n

    def test_cross_check_with_full_chain_is_active(self):
        # Should not raise: lumped and full chains agree for n <= 5.
        run_figure5(n_values=(3, 4), rho_values=(1.0,),
                    cross_check_full_chain_up_to=5)

    def test_rejects_single_process(self):
        with pytest.raises(ValueError):
            run_figure5(n_values=(1,), rho_values=(1.0,))


class TestFigure5FullChain:
    def test_full_chain_crosses_into_sparse_and_agrees(self):
        result = run_figure5_full_chain(n_values=(4, 10), rho_values=(1.0,))
        labels = [row.label for row in result.rows]
        assert labels == ["n=4 [dense]", "n=10 [sparse]"]
        assert max(result.column("max rel err")) < 1e-6
        # Same qualitative shape as Figure 5: E[X] grows with n.
        ex = result.column("E[X] rho=1")
        assert ex[1] > ex[0]

    def test_matches_plain_figure5_values(self):
        full = run_figure5_full_chain(n_values=(4, 6), rho_values=(0.5, 2.0))
        lumped = run_figure5(n_values=(4, 6), rho_values=(0.5, 2.0))
        for row_full, row_lumped in zip(full.rows, lumped.rows):
            for rho in ("0.5", "2"):
                assert row_full.get(f"E[X] rho={rho}") == pytest.approx(
                    row_lumped.get(f"E[X] rho={rho}"), rel=1e-8)

    def test_rejects_single_process(self):
        with pytest.raises(ValueError):
            run_figure5_full_chain(n_values=(1,), rho_values=(1.0,))


class TestHeterogeneousSweep:
    def test_parameter_family_shapes(self):
        params = heterogeneous_parameters(5, mu_gradient=2.0, locality=1.0)
        assert params.n == 5
        assert params.mu[0] == pytest.approx(1.0)
        assert params.mu[-1] == pytest.approx(2.0)
        # Interaction rate decays with process distance.
        assert params.lam[0, 1] > params.lam[0, 4]
        with pytest.raises(ValueError):
            heterogeneous_parameters(3, mu_gradient=0.0)
        with pytest.raises(ValueError):
            heterogeneous_parameters(3, locality=-1.0)

    def test_symmetric_limit_recovers_lumped_chain(self):
        from repro.markov.simplified import SimplifiedChain

        params = heterogeneous_parameters(6, mu_gradient=1.0, locality=0.0,
                                          lam_base=0.4)
        model_mean = run_heterogeneous_sweep(n=6, mu_gradients=(1.0,),
                                             lam_base=0.4,
                                             locality=0.0).rows[0].get("E[X]")
        truth = SimplifiedChain(n=6, mu=1.0, lam=0.4).mean_interval()
        assert params.is_symmetric()
        assert model_mean == pytest.approx(truth, rel=1e-8)

    def test_gradient_shortens_interval_and_unbalances_completion(self):
        result = run_heterogeneous_sweep(n=7, mu_gradients=(1.0, 3.0))
        ex = result.column("E[X]")
        ratios = result.column("q max/min")
        # Raising some mu_i shortens the interval, and the completion split
        # concentrates on the fast-checkpointing processes.
        assert ex[1] < ex[0]
        assert ratios[1] > ratios[0] >= 1.0


class TestFigure6:
    def test_density_peaks_near_zero(self):
        result = run_figure6()
        for row in result.rows:
            assert row.get("f(0)") > row.get("f(0.4)") > row.get("f(2)")

    def test_case1_density_at_zero_is_total_mu(self):
        result = run_figure6()
        assert result.rows[0].get("f(0)") == pytest.approx(3.0)
        assert result.rows[1].get("f(0)") == pytest.approx(1.5)

    def test_curves_shape(self):
        times, curves = figure6_curves(t_max=2.0, n_points=41)
        assert times.shape == (41,)
        assert set(curves) == {"case 1", "case 2", "case 3"}
        for values in curves.values():
            assert values.shape == (41,) and np.all(values >= 0.0)


class TestSectionAnalyses:
    def test_sync_loss_monotone_in_n_and_heterogeneity(self):
        result = run_sync_loss(n_values=(2, 3, 4), heterogeneity=(1.0, 2.0))
        cl1 = result.column("CL h=1")
        assert cl1 == sorted(cl1)
        for row in result.rows:
            assert row.get("CL h=2") >= row.get("CL h=1")

    def test_sync_loss_validation_close(self):
        result = run_sync_loss_validation(n=3, work=250.0, seed=2)
        assert result.rows[0].get("relative error") < 0.25

    def test_prp_costs_shape(self):
        result = run_prp_costs(n_values=(2, 3, 4, 6))
        assert result.column("extra time per RP") == sorted(
            result.column("extra time per RP"))
        ratios = result.column("bound / E[X]")
        assert ratios[-1] < ratios[0]   # PRP advantage grows with n


class TestValidationAndAblation:
    def test_three_way_validation_agrees(self):
        result = run_validation(cases=(1,), n_intervals=4000,
                                history_duration=900.0, seed=3)
        row = result.rows[0]
        assert row.get("MC rel err") < 0.1
        # The history-level estimate uses far fewer intervals (one long trajectory)
        # and X has a heavy-tailed phase-type distribution, so the tolerance is
        # looser than for the direct Monte-Carlo estimate.
        assert row.get("history rel err") < 0.2

    def test_detector_ablation_exact_is_denser(self):
        result = run_detector_ablation(cases=(1,), duration=150.0, seed=5)
        row = result.rows[0]
        assert row.get("exact lines") >= row.get("latest-RP lines")
        assert row.get("conservatism") >= 1.0

    def test_solver_ablation_tiny_difference(self):
        result = run_solver_ablation(case=1)
        assert max(result.column("abs diff")) < 1e-6
