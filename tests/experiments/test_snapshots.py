"""Pre-facade output snapshots: the rewired scenarios must not drift.

The ``strategy_comparison``, ``sync_loss`` and ``sync_loss_validation``
scenarios were rewritten onto the unified facade (``strategy`` study cells +
``evaluate_in_context``).  The JSON files under ``snapshots/`` were generated
by the *pre-facade* implementations; the rewired scenarios must reproduce
them bit for bit — same task layout, same seed stream, same floats — on every
backend.
"""

import json
import os

import pytest

from repro.report.store import strict_jsonable
from repro.runner import run_scenario

SNAPSHOT_DIR = os.path.join(os.path.dirname(__file__), "snapshots")
SNAPSHOT_NAMES = ("strategy_comparison", "sync_loss", "sync_loss_validation")


def load_snapshot(name):
    path = os.path.join(SNAPSHOT_DIR, f"{name}.json")
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize("name", SNAPSHOT_NAMES)
def test_scenario_is_bit_identical_to_pre_facade_snapshot(name):
    snapshot = load_snapshot(name)
    result = run_scenario(name, seed=snapshot["seed"], reps=snapshot["reps"],
                          **snapshot["params"])
    assert strict_jsonable(result.to_dict()) == snapshot["result"]


def test_strategy_comparison_snapshot_holds_on_process_pool():
    snapshot = load_snapshot("strategy_comparison")
    result = run_scenario("strategy_comparison", seed=snapshot["seed"],
                          reps=snapshot["reps"], backend="process", workers=2,
                          **snapshot["params"])
    assert strict_jsonable(result.to_dict()) == snapshot["result"]


def test_rewired_scenarios_serve_from_the_store(tmp_path):
    """The facade migration keeps the runner's store caching intact."""
    from repro.report import ResultStore
    from repro.runner import ExperimentRunner

    snapshot = load_snapshot("strategy_comparison")
    store = ResultStore(str(tmp_path / "store"))
    runner = ExperimentRunner(store=store)
    fresh = runner.run_record("strategy_comparison", seed=snapshot["seed"],
                              reps=snapshot["reps"], **snapshot["params"])
    again = runner.run_record("strategy_comparison", seed=snapshot["seed"],
                              reps=snapshot["reps"], **snapshot["params"])
    assert not fresh.cached and again.cached
    assert again.result.to_dict() == fresh.result.to_dict()
    assert strict_jsonable(again.result.to_dict()) == snapshot["result"]
