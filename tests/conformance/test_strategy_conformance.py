"""Cross-engine conformance for the strategy engine (Section 3 sync loss).

The synchronized scheme's waiting loss has both a measured face (the
``strategy`` engine driving the runtime) and a closed form (the ``analytic``
engine's ``CL``), so the two engines check each other on the same declared
system.

One divergence is *structural* and documented here rather than papered over
with loose tolerances: the closed form assumes all ``n`` processes
participate in every synchronisation, while the runtime lets a process that
finished its work budget drop out of subsequent lines.  Homogeneous systems
finish nearly together, so the measured loss undershoots ``CL`` by only a
few percent; heterogeneous rates make the slow checkpointer (which waits the
least per line) finish *first*, and the drop-out bias becomes a one-sided,
work-independent fraction.  The tests therefore use stderr-derived z-bands
plus a small systematic allowance where the estimator is near-unbiased, and
one-sided bounds plus monotonicity where the divergence is structural.
"""

import numpy as np
import pytest

from repro.api import StudySpec, SystemSpec, evaluate

pytestmark = pytest.mark.conformance

Z_BOUND = 4.5

#: Systematic allowance for the finished-process drop-out bias (homogeneous
#: systems; measured ~1-6% across seeds and sizes).
DROPOUT_ALLOWANCE = 0.10


def loss_system(n, *, mu=1.0, mu_spread=1.0, work=250.0, sync_interval=3.0):
    """Zero-cost, fault-free synchronized workload: pure waiting loss."""
    return SystemSpec.strategy("synchronized", n, mu=mu, mu_spread=mu_spread,
                               lam=0.5, work=work, error_rate=0.0,
                               checkpoint_cost=0.0, restart_cost=0.0,
                               sync_interval=sync_interval)


def measured_and_exact(system, *, reps, seed):
    measured = evaluate(StudySpec(system=system,
                                  metrics=("sync_loss",
                                           "recovery_lines_total"),
                                  reps=reps, seed=seed),
                        method="strategy")
    exact = evaluate(StudySpec(system=system, metrics=("sync_loss",)),
                     method="analytic").metrics["sync_loss"]
    return measured, exact


class TestHomogeneousAgreement:
    @pytest.mark.parametrize("seed", [31, 7])
    def test_measured_cl_within_band_n3(self, seed):
        measured, exact = measured_and_exact(loss_system(3), reps=3,
                                             seed=seed)
        band = Z_BOUND * measured.metrics["stderr_sync_loss"] \
            + DROPOUT_ALLOWANCE * exact
        assert abs(measured.metrics["sync_loss"] - exact) <= band
        # enough committed lines for the per-line average to mean something
        assert measured.metrics["recovery_lines_total"] > 50

    def test_exact_cl_matches_closed_form_series(self):
        # CL = n(H_n - 1)/mu for homogeneous rates.
        for n in (2, 3, 5, 8):
            harmonic = sum(1.0 / k for k in range(1, n + 1))
            exact = evaluate(StudySpec(system=loss_system(n),
                                       metrics=("sync_loss",)),
                             method="analytic").metrics["sync_loss"]
            assert exact == pytest.approx(n * (harmonic - 1.0))


class TestHeterogeneousStructure:
    def test_measured_loss_one_sided_below_closed_form(self):
        """Drop-out bias is one-sided: measured ≤ CL, but not degenerate."""
        system = loss_system(4, mu_spread=2.0, work=400.0)
        measured, exact = measured_and_exact(system, reps=3, seed=31)
        value = measured.metrics["sync_loss"]
        slack = Z_BOUND * measured.metrics["stderr_sync_loss"]
        assert value <= exact + slack
        assert value >= 0.5 * exact

    def test_spreading_rates_increases_loss_in_both_engines(self):
        """CL grows with heterogeneity at constant total rate — measured and
        closed-form must agree on the trend, not just the homogeneous point."""
        exact_by_spread = {}
        measured_by_spread = {}
        for spread in (1.0, 2.0):
            system = loss_system(4, mu_spread=spread, work=400.0)
            measured, exact = measured_and_exact(system, reps=3, seed=31)
            exact_by_spread[spread] = exact
            measured_by_spread[spread] = measured.metrics["sync_loss"]
        assert exact_by_spread[2.0] > exact_by_spread[1.0]
        assert measured_by_spread[2.0] > measured_by_spread[1.0]


@pytest.mark.slow
class TestDeepStrategyConformance:
    def test_homogeneous_band_tightens_with_size_and_work(self):
        for n, work in ((3, 1200.0), (6, 800.0)):
            measured, exact = measured_and_exact(loss_system(n, work=work),
                                                 reps=5, seed=31)
            band = Z_BOUND * measured.metrics["stderr_sync_loss"] \
                + DROPOUT_ALLOWANCE * exact
            assert abs(measured.metrics["sync_loss"] - exact) <= band, n
            assert measured.metrics["recovery_lines_total"] > 500

    def test_expected_wait_orders_schemes_waiting_time(self):
        """E[Z] closed form vs the measured per-scheme waiting time: only the
        synchronized scheme waits, and it waits roughly CL per line."""
        comparison = {}
        for scheme in ("asynchronous", "synchronized", "pseudo"):
            system = SystemSpec.strategy(scheme, 3, mu=1.0, lam=1.0,
                                         work=120.0, error_rate=0.0,
                                         checkpoint_cost=0.0,
                                         restart_cost=0.0, sync_interval=3.0)
            comparison[scheme] = evaluate(
                StudySpec(system=system,
                          metrics=("waiting_time", "recovery_lines"),
                          reps=4, seed=17),
                method="strategy").metrics
        assert comparison["asynchronous"]["waiting_time"] == 0.0
        assert comparison["pseudo"]["waiting_time"] == 0.0
        assert comparison["synchronized"]["waiting_time"] > 0.0
