"""Cross-engine conformance for non-exponential failure laws and fault models.

The ``failure_law`` axis makes the MC and DES engines sample the true renewal
law exactly, while the analytic engine serves a *documented approximation*
(the phase-type fit of :mod:`repro.markov.phfit`).  The contract gated here:

* **MC vs DES** — two independent samplers of the same renewal system must
  agree within combined standard errors (z-test) and in distribution (KS);
* **analytic PH approximation** — the analytic mean must sit within the
  documented, law-specific tolerance of the MC reference
  (:data:`PH_MEAN_TOLERANCE`, mirrored in docs/ANALYTIC.md), and the bound
  *tightens* as the fitter order grows;
* **fault models** — common-mode strikes arrive at the declared Poisson rate,
  cascades only ever add contamination, and a spec without a ``fault_model``
  block is bit-identical to the pre-correlated-fault runtimes.

Fast cases run in tier-1; the ``slow``-marked deep cases sweep every law and
fitter order with large budgets in the nightly job.
"""

import dataclasses

import numpy as np
import pytest
import scipy.stats

from repro.api import StudySpec, SystemSpec, evaluate
from repro.core.parameters import SystemParameters
from repro.markov.montecarlo import RenewalModelSimulator
from repro.sim.interval_sampler import DESIntervalSampler
from repro.workloads.generators import strategy_workload
from repro.recovery.asynchronous import AsynchronousRuntime

pytestmark = pytest.mark.conformance

Z_BOUND = 4.5
KS_ALPHA = 1e-3

#: Documented relative-error bounds of the analytic PH approximation of
#: ``E[X]`` (vs the exact renewal law), keyed by (law, shape) then fitter
#: order (``None`` = two-moment minimal fit).  Calibrated on the n=3,
#: μ=1.0, λ=0.5 system against a 100k-replication MC reference; this table
#: MUST stay in sync with the one in docs/ANALYTIC.md.
PH_MEAN_TOLERANCE = {
    ("weibull", 2.0): {None: 0.05, 16: 0.05, 32: 0.03},
    ("weibull", 0.7): {None: 0.16, 16: 0.09, 32: 0.09},
    ("lognormal", 0.8): {None: 0.15, 16: 0.10, 32: 0.08},
}

FAST_LAW = ("weibull", 2.0)
DEEP_LAWS = sorted(PH_MEAN_TOLERANCE)


def renewal_spec(law, shape, *, reps, seed=211, **overrides):
    fields = dict(
        system=SystemSpec("symmetric", {"n": 3, "mu": 1.0, "lam": 0.5,
                                        "failure_law": law,
                                        "failure_shape": shape}),
        metrics=("mean", "variance"), reps=reps, seed=seed)
    fields.update(overrides)
    return StudySpec(**fields)


def assert_ph_mean_within(law, shape, order, mc, analytic):
    """The documented tolerance gate: |analytic − exact| within the table
    bound, where "exact" is the MC estimate widened by its sampling band."""
    tol = PH_MEAN_TOLERANCE[(law, shape)][order]
    slack = tol * mc.mean + Z_BOUND * mc.stderr
    assert abs(analytic.mean - mc.mean) <= slack, (
        f"{law}({shape}) order={order}: analytic {analytic.mean:.4f} vs "
        f"mc {mc.mean:.4f} ± {mc.stderr:.4f}, documented tol {tol}")


# --------------------------------------------------------------- fast tier-1
class TestFastWeibullAgreement:
    law, shape = FAST_LAW

    @pytest.fixture(scope="class")
    def engines(self):
        spec = renewal_spec(self.law, self.shape, reps=2000)
        out = {m: evaluate(spec, method=m) for m in ("mc", "des")}
        out["analytic"] = evaluate(spec, method="analytic")
        return out

    def test_auto_routes_to_mc(self):
        spec = renewal_spec(self.law, self.shape, reps=50)
        assert evaluate(spec).method == "mc"

    def test_analytic_backend_names_the_order(self, engines):
        assert engines["analytic"].backend.startswith("ph-approx-")

    def test_mc_vs_des_mean_z(self, engines):
        mc, des = engines["mc"], engines["des"]
        z = abs(mc.mean - des.mean) / np.hypot(mc.stderr, des.stderr)
        assert z < Z_BOUND, f"mc {mc.mean} vs des {des.mean}: z={z:.2f}"

    def test_mc_vs_des_ks(self):
        params = SystemParameters.symmetric(3, 1.0, 0.5)
        mc = RenewalModelSimulator(params, seed=5, failure_law=self.law,
                                   failure_shape=self.shape)
        des = DESIntervalSampler(params, seed=6, failure_law=self.law,
                                 failure_shape=self.shape)
        stat = scipy.stats.ks_2samp(mc.sample_intervals(1500).lengths,
                                    des.sample_intervals(1500).lengths)
        assert stat.pvalue > KS_ALPHA

    def test_analytic_within_documented_tolerance(self, engines):
        assert_ph_mean_within(self.law, self.shape, None,
                              engines["mc"], engines["analytic"])

    def test_explicit_order_within_documented_tolerance(self, engines):
        spec = renewal_spec(self.law, self.shape, reps=2000,
                            options={"ph_order": 16})
        analytic = evaluate(spec, method="analytic")
        # Best-of-budget: the label reports the order actually used, which
        # never exceeds the requested budget.
        used = int(analytic.backend.rsplit("-", 1)[1])
        assert 1 <= used <= 16
        assert_ph_mean_within(self.law, self.shape, 16,
                              engines["mc"], analytic)


class TestFastFaultModelConformance:
    def test_common_mode_strike_count_matches_poisson_rate(self):
        """Strikes over a fixed horizon form a Poisson process of the
        declared rate: z-test the observed count against rate·T.

        Zero costs keep every group member running continuously, so each
        strike injects exactly ``len(group)`` recorded errors.
        """
        rate, horizon, group = 0.4, 250.0, (0, 1)
        wl = strategy_workload(n=3, mu=1.0, lam=0.5, work=1e9,
                               error_rate=0.0, checkpoint_cost=0.0,
                               restart_cost=0.0,
                               fault_model={"groups": [list(group)],
                                            "common_mode_rate": rate})
        wl = dataclasses.replace(wl, max_sim_time=horizon)
        rt = AsynchronousRuntime(wl, seed=17)
        rt.run()
        strikes = rt.monitor.counter("errors_injected")._count / len(group)
        expected = rate * horizon
        z = abs(strikes - expected) / np.sqrt(expected)
        assert z < Z_BOUND, f"observed {strikes} strikes vs {expected}: z={z:.2f}"

    def test_cascades_only_add_contamination(self):
        """Averaged over replications, p=1 injects at least as many errors
        as p=0 on the same seeds (cascade draws live on their own stream)."""
        def mean_errors(p):
            totals = []
            for seed in range(8):
                wl = strategy_workload(
                    n=4, mu=1.0, lam=0.5, work=15.0, error_rate=0.0,
                    fault_model={"groups": [[0, 1]],
                                 "common_mode_rate": 0.4,
                                 "propagation_probability": p,
                                 "cascade_depth": 3})
                rt = AsynchronousRuntime(wl, seed=seed)
                rt.run()
                totals.append(rt.monitor.counter("errors_injected")._count)
            return float(np.mean(totals))

        assert mean_errors(1.0) > mean_errors(0.0)

    def test_no_fault_model_is_bit_identical(self):
        """An absent fault_model block schedules nothing: two workloads built
        with and without the kwarg produce byte-equal run reports."""
        plain = strategy_workload(n=3, mu=1.0, lam=0.5, work=12.0,
                                  error_rate=0.05)
        explicit = strategy_workload(n=3, mu=1.0, lam=0.5, work=12.0,
                                     error_rate=0.05, fault_model=None)
        assert AsynchronousRuntime(plain, seed=3).run() == \
            AsynchronousRuntime(explicit, seed=3).run()

    def test_weibull_shape_one_matches_exponential_rate(self):
        """Weibull(1) fault interarrivals are exponential: the injected-error
        budgets must agree across the two draw paths within a z band."""
        def mean_errors(**law):
            totals = []
            for seed in range(10):
                wl = strategy_workload(n=3, mu=1.0, lam=0.5, work=20.0,
                                       error_rate=0.08, **law)
                rt = AsynchronousRuntime(wl, seed=seed)
                rt.run()
                totals.append(rt.monitor.counter("errors_injected")._count)
            return np.asarray(totals, dtype=float)

        expo = mean_errors()
        weib = mean_errors(failure_law="weibull", failure_shape=1.0)
        stderr = np.hypot(expo.std(ddof=1), weib.std(ddof=1)) \
            / np.sqrt(len(expo))
        z = abs(expo.mean() - weib.mean()) / max(stderr, 1e-9)
        assert z < Z_BOUND


# ------------------------------------------------------------------ nightly
@pytest.mark.slow
class TestDeepLawSweep:
    @pytest.fixture(scope="class")
    def references(self):
        """One 30k-rep MC reference per (law, shape)."""
        return {key: evaluate(renewal_spec(*key, reps=30_000), method="mc")
                for key in DEEP_LAWS}

    @pytest.mark.parametrize("key", DEEP_LAWS)
    def test_mc_vs_des_deep_z(self, references, key):
        law, shape = key
        des = evaluate(renewal_spec(law, shape, reps=10_000, seed=97),
                       method="des")
        mc = references[key]
        z = abs(mc.mean - des.mean) / np.hypot(mc.stderr, des.stderr)
        assert z < Z_BOUND

    @pytest.mark.parametrize("key", DEEP_LAWS)
    @pytest.mark.parametrize("order", [None, 16, 32])
    def test_analytic_tolerance_table(self, references, key, order):
        law, shape = key
        options = {} if order is None else {"ph_order": order}
        analytic = evaluate(renewal_spec(law, shape, reps=1, options=options),
                            method="analytic")
        assert_ph_mean_within(law, shape, order, references[key], analytic)

    @pytest.mark.parametrize("key", DEEP_LAWS)
    def test_approximation_tightens_with_order(self, references, key):
        """The order-32 fit must not be worse than the minimal fit (the
        'tightens with order' clause of the documented contract)."""
        law, shape = key
        mc = references[key]
        minimal = evaluate(renewal_spec(law, shape, reps=1),
                           method="analytic")
        deep = evaluate(renewal_spec(law, shape, reps=1,
                                     options={"ph_order": 32}),
                        method="analytic")
        band = Z_BOUND * mc.stderr
        assert abs(deep.mean - mc.mean) <= abs(minimal.mean - mc.mean) + band
