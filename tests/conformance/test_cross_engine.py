"""Cross-engine statistical conformance: analytic vs mc vs des.

Every engine answers the same declarative :class:`~repro.api.StudySpec`, so
their numbers must agree — exactly where both sides are closed-form, and
within statistically derived tolerances where a sampler is involved:

* **moment z-tests** — a stochastic mean estimate must sit within
  ``Z_BOUND`` reported standard errors of the exact value (and the two
  samplers within the combined standard error of each other);
* **Kolmogorov–Smirnov** — the samplers' interval samples must be consistent
  with the analytic cdf (one-sample KS), and with each other (two-sample KS).

Fast cases run in tier-1; the ``slow``-marked deep cases sweep the paper's
Table 1 systems with large budgets in the nightly job.
"""

import numpy as np
import pytest
import scipy.stats

from repro.api import StudySpec, SystemSpec, evaluate
from repro.core.parameters import SystemParameters
from repro.markov.montecarlo import ModelSimulator
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel
from repro.sim.interval_sampler import DESIntervalSampler

pytestmark = pytest.mark.conformance

#: Acceptance band of the z-tests, in reported standard errors.  4.5 sigma
#: two-sided is a ~7e-6 false-alarm probability per comparison — tight enough
#: to catch a broken engine, loose enough that the seeded tests never flake.
Z_BOUND = 4.5

#: p-value floor for the KS tests (seeded, so this is deterministic).
KS_ALPHA = 1e-3


def shared_spec(**overrides):
    """The shared n=5 acceptance spec all three engines must agree on."""
    fields = dict(system=SystemSpec.symmetric(5, 1.0, 0.5),
                  metrics=("mean", "variance", "rp_counts",
                           "completion_probabilities"),
                  reps=5000, seed=101)
    fields.update(overrides)
    return StudySpec(**fields)


@pytest.fixture(scope="module")
def three_way():
    """One evaluation per engine on the shared spec (computed once)."""
    spec = shared_spec()
    return {method: evaluate(spec, method=method)
            for method in ("analytic", "mc", "des")}


class TestSharedSpecAgreement:
    def test_engines_identify_themselves(self, three_way):
        assert three_way["analytic"].method == "analytic"
        assert three_way["mc"].n_samples == 5000
        assert three_way["des"].n_samples == 5000

    @pytest.mark.parametrize("sampler", ["mc", "des"])
    def test_mean_z_test_vs_analytic(self, three_way, sampler):
        exact = three_way["analytic"].mean
        estimate = three_way[sampler]
        z = abs(estimate.mean - exact) / estimate.stderr
        assert z < Z_BOUND, (
            f"{sampler} mean {estimate.mean} vs exact {exact}: z={z:.2f}")

    def test_mean_two_sample_z_test_mc_vs_des(self, three_way):
        mc, des = three_way["mc"], three_way["des"]
        combined = np.hypot(mc.stderr, des.stderr)
        z = abs(mc.mean - des.mean) / combined
        assert z < Z_BOUND

    @pytest.mark.parametrize("sampler", ["mc", "des"])
    def test_variance_agreement(self, three_way, sampler):
        # Var[s^2] ≈ (m4 - s^4)/n; for these near-exponential intervals a
        # normal-theory bound s^2·sqrt(2/(n-1)) underestimates the tail, so
        # the band is doubled on top of the Z_BOUND multiplier.
        exact = three_way["analytic"].metrics["variance"]
        est = three_way[sampler].metrics["variance"]
        n = three_way[sampler].n_samples
        stderr_var = exact * np.sqrt(2.0 / (n - 1))
        assert abs(est - exact) <= 2.0 * Z_BOUND * stderr_var

    @pytest.mark.parametrize("sampler", ["mc", "des"])
    def test_rp_counts_within_stated_tolerance(self, three_way, sampler):
        exact = np.asarray(three_way["analytic"].rp_counts)
        est = np.asarray(three_way[sampler].rp_counts)
        np.testing.assert_allclose(est, exact, rtol=shared_spec().rel_tol)

    @pytest.mark.parametrize("sampler", ["mc", "des"])
    def test_completion_probabilities_sum_and_agree(self, three_way, sampler):
        exact = np.asarray(three_way["analytic"].completion_probabilities)
        est = np.asarray(three_way[sampler].completion_probabilities)
        assert est.sum() == pytest.approx(1.0)
        # q_i are probabilities: tolerance is absolute (binomial stderr scale).
        stderr = np.sqrt(exact * (1 - exact) / three_way[sampler].n_samples)
        assert np.all(np.abs(est - exact) <= Z_BOUND * stderr + 1e-9)


class TestDistributionalConformance:
    @pytest.fixture(scope="class")
    def system(self):
        return SystemParameters.symmetric(5, 1.0, 0.5)

    @pytest.fixture(scope="class")
    def analytic_cdf(self, system):
        model = RecoveryLineIntervalModel(system)
        return lambda t: np.atleast_1d(model.cdf(np.asarray(t, dtype=float)))

    def test_ks_mc_samples_vs_analytic_cdf(self, system, analytic_cdf):
        lengths = ModelSimulator(system, seed=7).sample_intervals(2000).lengths
        result = scipy.stats.kstest(lengths, analytic_cdf)
        assert result.pvalue > KS_ALPHA, result

    def test_ks_des_samples_vs_analytic_cdf(self, system, analytic_cdf):
        lengths = DESIntervalSampler(system, seed=7).sample_intervals(1500).lengths
        result = scipy.stats.kstest(lengths, analytic_cdf)
        assert result.pvalue > KS_ALPHA, result

    def test_ks_two_sample_mc_vs_des(self, system):
        mc = ModelSimulator(system, seed=3).sample_intervals(2000).lengths
        des = DESIntervalSampler(system, seed=11).sample_intervals(1500).lengths
        result = scipy.stats.ks_2samp(mc, des)
        assert result.pvalue > KS_ALPHA, result

    def test_empirical_cdf_grid_matches_analytic(self):
        spec = shared_spec(metrics=("mean", "cdf"), times=(2.0, 4.0, 8.0),
                           reps=5000)
        exact = np.asarray(evaluate(spec, method="analytic")
                           .distributions["cdf"])
        for sampler in ("mc", "des"):
            est = np.asarray(evaluate(spec, method=sampler)
                             .distributions["cdf"])
            stderr = np.sqrt(exact * (1 - exact) / spec.effective_reps())
            assert np.all(np.abs(est - exact) <= Z_BOUND * stderr + 1e-9), \
                sampler


@pytest.mark.slow
class TestDeepConformance:
    """Nightly: larger budgets, the paper's Table 1 systems."""

    @pytest.mark.parametrize("case", [1, 2, 3, 4, 5])
    def test_table1_case_mean_z_test(self, case):
        spec = StudySpec(system=SystemSpec.table1_case(case),
                         metrics=("mean", "variance"), reps=60_000,
                         seed=case)
        exact = evaluate(spec, method="analytic").mean
        for sampler in ("mc", "des"):
            est = evaluate(spec, method=sampler)
            z = abs(est.mean - exact) / est.stderr
            assert z < Z_BOUND, (case, sampler, z)

    def test_large_sample_ks_vs_analytic(self):
        system = SystemParameters.symmetric(4, 1.0, 1.0)
        model = RecoveryLineIntervalModel(system)
        cdf = lambda t: np.atleast_1d(model.cdf(np.asarray(t, dtype=float)))
        mc = ModelSimulator(system, seed=41).sample_intervals(30_000).lengths
        assert scipy.stats.kstest(mc, cdf).pvalue > KS_ALPHA
        des = DESIntervalSampler(system, seed=41).sample_intervals(8_000).lengths
        assert scipy.stats.kstest(des, cdf).pvalue > KS_ALPHA

    def test_heterogeneous_system_three_way(self):
        spec = StudySpec(system=SystemSpec.heterogeneous(
                             5, mu_base=1.0, mu_gradient=1.3, lam_base=0.4,
                             locality=0.5),
                         metrics=("mean", "rp_counts"), reps=40_000, seed=13)
        exact = evaluate(spec, method="analytic")
        for sampler in ("mc", "des"):
            est = evaluate(spec, method=sampler)
            z = abs(est.mean - exact.mean) / est.stderr
            assert z < Z_BOUND, (sampler, z)
            np.testing.assert_allclose(np.asarray(est.rp_counts),
                                       np.asarray(exact.rp_counts),
                                       rtol=0.03)
