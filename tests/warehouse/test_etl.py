"""Warehouse ETL: idempotence, layout parity, bit-exactness, authority."""

import json
import os
import sqlite3

import pytest

from repro.experiments.common import ExperimentResult
from repro.report.sharded import ShardedResultStore
from repro.report.store import ResultStore
from repro.warehouse import (
    connect,
    float_hex,
    hex_float,
    load_store,
    open_store,
)
from repro.warehouse.etl import _axis_row, _flatten_axes, _metric_rows


def _result(name="unit_result", **values):
    values = values or {"makespan": 18.25, "slowdown": 1.21359770746125}
    result = ExperimentResult(name=name, paper_reference="fixture",
                              columns=["value"], notes="fixture")
    for label, value in values.items():
        result.add_row(label, value=value)
    return result


def _fill(store, cells=4):
    """Populate *store* with a small scheme sweep; returns the records."""
    records = []
    schemes = ("synchronized", "asynchronous", "pseudo", "checkpointing")
    for i in range(cells):
        params = {"method": "strategy",
                  "spec": {"system": {"kind": "strategy",
                                      "scheme": schemes[i % len(schemes)],
                                      "n": 3 + i, "mu": 1.0, "lam": 0.5,
                                      "work": 15.0,
                                      "checkpoint_cost": 0.02 * (i + 1)},
                           "metrics": ["makespan", "slowdown"],
                           "counting": "per_process"}}
        result = _result(makespan=18.0 + i / 7.0,
                         slowdown=1.2 + i / 13.0,
                         **{"stderr_makespan": 0.5 / (i + 1)})
        records.append(store.put("evaluate", params, seed=11 + i, reps=3,
                                 backend="serial", elapsed_seconds=0.25 * i,
                                 result=result))
    return records


def _table_dump(db_path, table):
    conn = sqlite3.connect(db_path)
    try:
        return conn.execute(
            f"SELECT * FROM {table} ORDER BY 1, 2, 3").fetchall()
    finally:
        conn.close()


class TestIdempotence:
    def test_second_load_inserts_zero_rows(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        _fill(store)
        db = str(tmp_path / "wh.sqlite")
        first = load_store(str(tmp_path / "store"), db)
        assert first.cells_inserted == first.cells_seen == 4
        before = {t: _table_dump(db, t) for t in ("cells", "axes", "metrics")}
        second = load_store(str(tmp_path / "store"), db)
        assert second.cells_inserted == 0
        assert second.cells_skipped == 4
        after = {t: _table_dump(db, t) for t in ("cells", "axes", "metrics")}
        assert before == after

    def test_incremental_load_picks_up_only_new_cells(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        _fill(store, cells=2)
        db = str(tmp_path / "wh.sqlite")
        assert load_store(str(tmp_path / "store"), db).cells_inserted == 2
        _fill(store, cells=4)          # 2 known + 2 new content addresses
        summary = load_store(str(tmp_path / "store"), db)
        assert summary.cells_seen == 4
        assert summary.cells_inserted == 2

    def test_each_invocation_appends_one_provenance_row(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        _fill(store, cells=1)
        db = str(tmp_path / "wh.sqlite")
        load_store(str(tmp_path / "store"), db)
        load_store(str(tmp_path / "store"), db)
        conn = sqlite3.connect(db)
        rows = conn.execute(
            "SELECT store_root, cells_seen, cells_inserted FROM loads "
            "ORDER BY id").fetchall()
        conn.close()
        assert len(rows) == 2
        assert rows[0] == (os.path.abspath(str(tmp_path / "store")), 1, 1)
        assert rows[1] == (os.path.abspath(str(tmp_path / "store")), 1, 0)


class TestLayoutParity:
    def test_flat_and_sharded_stores_load_identically(self, tmp_path):
        flat = ResultStore(str(tmp_path / "flat"))
        sharded = ShardedResultStore(str(tmp_path / "sharded"), shards=4)
        _fill(flat)
        _fill(sharded)
        flat_db = str(tmp_path / "flat.sqlite")
        sharded_db = str(tmp_path / "sharded.sqlite")
        load_store(str(tmp_path / "flat"), flat_db)
        load_store(str(tmp_path / "sharded"), sharded_db)
        for table in ("cells", "axes", "metrics"):
            flat_rows = _table_dump(flat_db, table)
            sharded_rows = _table_dump(sharded_db, table)
            if table == "cells":
                # load_id is positional-identical (single load each side).
                assert flat_rows == sharded_rows
            else:
                assert flat_rows == sharded_rows
        assert len(_table_dump(flat_db, "cells")) == 4

    def test_open_store_detects_layout(self, tmp_path):
        flat_root = str(tmp_path / "flat")
        sharded_root = str(tmp_path / "sharded")
        _fill(ResultStore(flat_root), cells=1)
        _fill(ShardedResultStore(sharded_root, shards=2), cells=1)
        assert isinstance(open_store(flat_root), ResultStore)
        assert isinstance(open_store(sharded_root), ShardedResultStore)


class TestBitExactness:
    def test_metric_hex_matches_store_record(self, tmp_path):
        # Every warehouse metric must round-trip to the exact float the
        # StoreRecord reloads — same bits, asserted through float.hex.
        store = ResultStore(str(tmp_path / "store"))
        records = _fill(store)
        db = str(tmp_path / "wh.sqlite")
        load_store(str(tmp_path / "store"), db)
        conn = sqlite3.connect(db)
        for record in records:
            loaded = store.get(record.key)
            for row in loaded.result.rows:
                stored = float(row.get("value"))
                got = conn.execute(
                    "SELECT value_hex FROM metrics WHERE key = ? AND "
                    "label = ? AND col = 'value'",
                    (record.key, row.label)).fetchone()
                assert got is not None, (record.key, row.label)
                assert got[0] == float_hex(stored)
                assert hex_float(got[0]) == stored
        conn.close()

    def test_nonfinite_metric_survives_via_hex_sidecar(self, tmp_path):
        # SQLite REAL cannot hold NaN (it becomes NULL); the hex sidecar
        # must still reproduce inf and NaN bit patterns.
        store = ResultStore(str(tmp_path / "store"))
        result = ExperimentResult(name="nf", paper_reference="",
                                  columns=["value"])
        result.add_row("q_max", value=float("inf"))
        result.add_row("dropped", value=float("nan"))
        store.put("nf", {"p": 1}, seed=1, reps=None, backend="serial",
                  elapsed_seconds=0.0, result=result)
        db = str(tmp_path / "wh.sqlite")
        load_store(str(tmp_path / "store"), db)
        conn = sqlite3.connect(db)
        rows = dict(conn.execute(
            "SELECT label, value_hex FROM metrics").fetchall())
        nulls = dict(conn.execute(
            "SELECT label, value FROM metrics").fetchall())
        conn.close()
        assert hex_float(rows["q_max"]) == float("inf")
        assert hex_float(rows["dropped"]) != hex_float(rows["dropped"])  # NaN
        assert nulls["q_max"] == float("inf")   # SQLite REAL holds inf fine
        assert nulls["dropped"] is None         # ... but not NaN

    def test_stderr_folded_into_base_metric_row(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        record = _fill(store, cells=1)[0]
        db = str(tmp_path / "wh.sqlite")
        load_store(str(tmp_path / "store"), db)
        conn = sqlite3.connect(db)
        stderr, stderr_hex = conn.execute(
            "SELECT stderr, stderr_hex FROM metrics WHERE key = ? AND "
            "label = 'makespan' AND col = 'value'", (record.key,)).fetchone()
        own_row = conn.execute(
            "SELECT value FROM metrics WHERE key = ? AND "
            "label = 'stderr_makespan'", (record.key,)).fetchone()
        conn.close()
        assert stderr == 0.5 and stderr_hex == float_hex(0.5)
        assert own_row == (0.5,)           # kept as a row too: lossless image


class TestIndexAuthority:
    def test_truncated_index_lines_hide_nothing(self, tmp_path):
        # The ETL reads object files, never the advisory index — a
        # crash-truncated trailing line must not drop any cell.
        root = str(tmp_path / "store")
        store = ResultStore(root)
        _fill(store, cells=3)
        index = os.path.join(root, "index.jsonl")
        with open(index, "r+", encoding="utf-8") as handle:
            raw = handle.read()
            handle.seek(0)
            handle.write(raw[:-40])        # chop mid-way through last entry
            handle.truncate()
        assert len(list(store.records())) < 3      # index really is damaged
        summary = load_store(root, str(tmp_path / "wh.sqlite"))
        assert summary.cells_seen == summary.cells_inserted == 3

    def test_missing_index_is_fine(self, tmp_path):
        root = str(tmp_path / "store")
        _fill(ResultStore(root), cells=2)
        os.remove(os.path.join(root, "index.jsonl"))
        summary = load_store(root, str(tmp_path / "wh.sqlite"))
        assert summary.cells_inserted == 2


class TestTransformRules:
    def test_axis_rows_classify_kinds(self):
        assert _axis_row("flag", True) == ("flag", "bool", "true", 1.0)
        assert _axis_row("n", 5) == ("n", "num", "5", 5.0)
        assert _axis_row("scheme", "pseudo") == ("scheme", "str", "pseudo",
                                                 None)
        assert _axis_row("opt", None) == ("opt", "null", None, None)
        axis, kind, text, num = _axis_row("metrics", ["a", "b"])
        assert (axis, kind, num) == ("metrics", "json", None)
        assert json.loads(text) == ["a", "b"]

    def test_evaluate_spec_flattens_system_args_to_axes(self):
        params = {"method": "strategy",
                  "spec": {"system": {"kind": "strategy", "scheme": "pseudo",
                                      "n": 4, "lam": 0.5},
                           "metrics": ["makespan"],
                           "options": {"rel_tol": 1e-9}}}
        axes = {row[0]: row for row in _flatten_axes("evaluate", params)}
        assert axes["method"][2] == "strategy"
        assert axes["kind"][2] == "strategy"
        assert axes["scheme"][2] == "pseudo"
        assert axes["n"][3] == 4.0
        assert axes["lam"][3] == 0.5
        assert axes["option.rel_tol"][3] == 1e-9
        assert "system" not in axes and "options" not in axes

    def test_plain_scenarios_map_params_one_to_one(self):
        axes = _flatten_axes("table1", {"simulate": False, "n": 5})
        assert [row[0] for row in axes] == ["n", "simulate"]

    def test_metric_rows_parse_strict_jsonable_strings(self):
        # Persisted envelopes carry non-finite floats as 'inf'-style strings.
        result = {"rows": [{"label": "q_max", "values": {"value": "inf"}}]}
        ((label, col, value, value_hex, stderr, stderr_hex),) = \
            _metric_rows(result)
        assert (label, col) == ("q_max", "value")
        assert value == float("inf")
        assert hex_float(value_hex) == float("inf")
        assert stderr is None and stderr_hex is None


class TestSchemaGuards:
    def test_incompatible_schema_version_fails_loudly(self, tmp_path):
        db = str(tmp_path / "wh.sqlite")
        conn = connect(db)
        conn.execute("UPDATE warehouse_meta SET value = '999' "
                     "WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(ValueError, match="schema version 999"):
            connect(db)
