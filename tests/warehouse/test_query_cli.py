"""The ``repro query`` CLI face: load/kpi/sql verbs, formats, sandboxing."""

import json
import sqlite3

import pytest

from repro.__main__ import main
from repro.experiments.common import ExperimentResult
from repro.report.store import ResultStore
from repro.warehouse import KPI_VIEWS, connect_readonly, kpi_rows, load_store
from repro.warehouse.cli import format_rows


@pytest.fixture()
def loaded(tmp_path):
    """A store with one tiny scheme sweep, loaded into a warehouse db."""
    store = ResultStore(str(tmp_path / "store"))
    for i, scheme in enumerate(("synchronized", "asynchronous")):
        result = ExperimentResult(name="api_evaluation", paper_reference="",
                                  columns=["value"],
                                  notes=json.dumps({"method": "strategy",
                                                    "backend": "serial",
                                                    "n_processes": 3}))
        result.add_row("makespan", value=20.0 + i)
        result.add_row("slowdown", value=1.3 + i / 10.0)
        store.put("evaluate",
                  {"method": "strategy",
                   "spec": {"system": {"kind": "strategy", "scheme": scheme,
                                       "n": 3, "lam": 1.0,
                                       "checkpoint_cost": 0.02},
                            "metrics": ["makespan", "slowdown"]}},
                  seed=11, reps=3, backend="serial",
                  elapsed_seconds=0.5, result=result)
    db = str(tmp_path / "wh.sqlite")
    load_store(str(tmp_path / "store"), db)
    return str(tmp_path / "store"), db


class TestKPIViews:
    def test_scheme_frontier_orders_by_workload_then_scheme(self, loaded):
        _store, db = loaded
        conn = connect_readonly(db)
        columns, rows = kpi_rows(conn, "scheme_frontier")
        conn.close()
        assert rows, "frontier view returned no rows"
        by = dict(zip(columns, rows[0]))
        assert by["scheme"] == "asynchronous"
        assert by["n"] == 3.0 and by["checkpoint_cost"] == 0.02
        assert by["makespan"] == 21.0 and by["slowdown"] == 1.3 + 1 / 10.0

    def test_every_view_in_catalog_is_queryable(self, loaded):
        _store, db = loaded
        conn = connect_readonly(db)
        for name in KPI_VIEWS:
            columns, _rows = kpi_rows(conn, name)
            assert columns
        conn.close()

    def test_unknown_view_lists_catalog(self, loaded):
        _store, db = loaded
        conn = connect_readonly(db)
        with pytest.raises(KeyError, match="scheme_frontier"):
            kpi_rows(conn, "nope")
        conn.close()

    def test_limit_caps_rows(self, loaded):
        _store, db = loaded
        conn = connect_readonly(db)
        _cols, rows = kpi_rows(conn, "scheme_frontier", limit=1)
        conn.close()
        assert len(rows) == 1


class TestFormats:
    def test_json_round_trips(self):
        text = format_rows(["a", "b"], [(1, "x"), (None, 2.5)], "json")
        assert json.loads(text) == [{"a": 1, "b": "x"},
                                    {"a": None, "b": 2.5}]

    def test_csv_has_header_and_rows(self):
        text = format_rows(["a", "b"], [(1, "x")], "csv")
        assert text.splitlines() == ["a,b", "1,x"]

    def test_table_aligns_columns_and_blanks_nulls(self):
        text = format_rows(["name", "v"], [("long-name", None), ("s", 2.0)],
                           "table")
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[2].startswith("long-name")
        assert lines[3].split()[1] == "2.0"


class TestCLI:
    def test_load_then_kpi_end_to_end(self, loaded, capsys):
        store, db = loaded
        assert main(["query", "load", "--store", store, "--db", db]) == 0
        out = capsys.readouterr().out
        assert "0 cell(s) loaded, 2 already present" in out
        assert main(["query", "kpi", "scheme_frontier", "--db", db,
                     "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("scheme,")
        assert len(out.strip().splitlines()) == 3      # header + 2 cells

    def test_kpi_without_name_lists_catalog(self, loaded, capsys):
        _store, db = loaded
        assert main(["query", "kpi", "--db", db]) == 0
        out = capsys.readouterr().out
        for name in KPI_VIEWS:
            assert name in out

    def test_sql_is_read_only(self, loaded):
        _store, db = loaded
        with pytest.raises(SystemExit, match="readonly"):
            main(["query", "sql", "DROP TABLE cells", "--db", db])
        conn = sqlite3.connect(db)
        assert conn.execute("SELECT COUNT(*) FROM cells").fetchone() == (2,)
        conn.close()

    def test_sql_select_renders_json(self, loaded, capsys):
        _store, db = loaded
        assert main(["query", "sql",
                     "SELECT scenario, COUNT(*) AS cells FROM cells "
                     "GROUP BY scenario", "--db", db,
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == [{"scenario": "evaluate", "cells": 2}]

    def test_missing_store_and_db_fail_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="result store not found"):
            main(["query", "load", "--store", str(tmp_path / "absent")])
        with pytest.raises(SystemExit, match="warehouse database not found"):
            main(["query", "kpi", "scheme_frontier",
                  "--db", str(tmp_path / "absent.sqlite")])

    def test_unknown_kpi_name_fails_with_catalog(self, loaded):
        _store, db = loaded
        with pytest.raises(SystemExit, match="known views"):
            main(["query", "kpi", "bogus", "--db", db])
