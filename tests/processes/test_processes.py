"""Unit tests for recovery-block program structure, acceptance tests, topologies."""

import numpy as np
import pytest

from repro.processes.acceptance import CoverageAcceptanceTest, PerfectAcceptanceTest
from repro.processes.communication import (
    all_pairs_rates,
    producer_consumer_rates,
    ring_rates,
    star_rates,
)
from repro.processes.program import Alternate, BlockOutcome, RecoveryBlockExecutor, RecoveryBlockSpec


class TestRecoveryBlockSpec:
    def test_default_spec_has_single_primary(self):
        spec = RecoveryBlockSpec()
        assert spec.depth == 1
        assert spec.alternates[0].success_probability == 1.0

    def test_with_alternates_builder(self):
        spec = RecoveryBlockSpec.with_alternates(3, primary_success=0.9,
                                                 alternate_success=0.8)
        assert spec.depth == 3
        assert spec.alternates[1].name == "alternate-1"
        assert spec.alternates[2].duration_factor < 1.0

    def test_rejects_empty_alternates(self):
        with pytest.raises(ValueError):
            RecoveryBlockSpec(alternates=())

    def test_alternate_validation(self):
        with pytest.raises(ValueError):
            Alternate(name="bad", duration_factor=0.0)
        with pytest.raises(ValueError):
            Alternate(name="bad", success_probability=1.5)


class TestRecoveryBlockExecutor:
    def test_always_successful_primary(self, rng):
        executor = RecoveryBlockExecutor(RecoveryBlockSpec(), rng)
        outcome = executor.execute(2.0)
        assert outcome.passed and outcome.alternate_used == 0
        assert outcome.elapsed == pytest.approx(2.0)
        assert executor.executions == 1 and executor.failures == 0

    def test_alternates_used_when_primary_fails(self, rng):
        spec = RecoveryBlockSpec(alternates=(
            Alternate(name="primary", success_probability=0.0),
            Alternate(name="backup", success_probability=1.0, duration_factor=0.5)),
            local_retry_cost=0.1)
        outcome = RecoveryBlockExecutor(spec, rng).execute(2.0)
        assert outcome.passed and outcome.alternate_used == 1
        assert outcome.elapsed == pytest.approx(2.0 + 0.1 + 1.0)

    def test_exhaustion_reported(self, rng):
        spec = RecoveryBlockSpec(alternates=(
            Alternate(name="p", success_probability=0.0),
            Alternate(name="a", success_probability=0.0)))
        outcome = RecoveryBlockExecutor(spec, rng).execute(1.0)
        assert outcome.exhausted and outcome.alternate_used == -1
        assert outcome.attempts == 2

    def test_contaminated_state_is_detected_not_fixed(self, rng):
        executor = RecoveryBlockExecutor(RecoveryBlockSpec(), rng)
        outcome = executor.execute(1.0, state_contaminated=True,
                                   detect_contamination_probability=1.0)
        assert outcome.detected_contamination and not outcome.passed

    def test_contamination_can_slip_through(self, rng):
        executor = RecoveryBlockExecutor(RecoveryBlockSpec(), rng)
        outcome = executor.execute(1.0, state_contaminated=True,
                                   detect_contamination_probability=0.0)
        assert outcome.passed and not outcome.detected_contamination

    def test_expected_elapsed_matches_sampling(self, rng):
        spec = RecoveryBlockSpec.with_alternates(2, primary_success=0.6,
                                                 alternate_success=1.0)
        executor = RecoveryBlockExecutor(spec, rng)
        samples = [executor.execute(1.0).elapsed for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(executor.expected_elapsed(1.0),
                                                 rel=0.05)

    def test_alternate_usage_counts(self, rng):
        spec = RecoveryBlockSpec.with_alternates(2, primary_success=0.5,
                                                 alternate_success=1.0)
        executor = RecoveryBlockExecutor(spec, rng)
        for _ in range(200):
            executor.execute(1.0)
        usage = executor.alternate_usage()
        assert sum(usage) == 200 and usage[1] > 0

    def test_invalid_duration_rejected(self, rng):
        with pytest.raises(ValueError):
            RecoveryBlockExecutor(RecoveryBlockSpec(), rng).execute(0.0)


class TestAcceptanceTests:
    def test_perfect_test_catches_local_errors(self, rng):
        test = PerfectAcceptanceTest()
        assert test.detects(has_local_error=True, has_external_error=False, rng=rng)
        assert not test.detects(has_local_error=False, has_external_error=False,
                                rng=rng)

    def test_perfect_test_external_probability(self, rng):
        never = PerfectAcceptanceTest(external_detection=0.0)
        assert not never.detects(has_local_error=False, has_external_error=True,
                                 rng=rng)

    def test_coverage_test_rates(self, rng):
        test = CoverageAcceptanceTest(local_coverage=0.5, external_coverage=0.0)
        detections = sum(test.detects(has_local_error=True, has_external_error=False,
                                      rng=rng) for _ in range(4000))
        assert detections / 4000 == pytest.approx(0.5, abs=0.05)

    def test_false_alarm_probability(self, rng):
        test = CoverageAcceptanceTest(false_alarm_probability=0.2)
        alarms = sum(test.false_alarm(rng) for _ in range(4000))
        assert alarms / 4000 == pytest.approx(0.2, abs=0.03)
        assert not PerfectAcceptanceTest().false_alarm(rng)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            PerfectAcceptanceTest(external_detection=1.5)
        with pytest.raises(ValueError):
            CoverageAcceptanceTest(local_coverage=-0.1)


class TestTopologies:
    def test_all_pairs_symmetric_zero_diagonal(self):
        m = all_pairs_rates(4, 0.5)
        assert np.allclose(m, m.T) and np.allclose(np.diag(m), 0.0)
        assert m[0, 3] == 0.5

    def test_ring_connects_neighbours_only(self):
        m = ring_rates(5, 1.0)
        assert m[0, 1] == 1.0 and m[0, 4] == 1.0 and m[0, 2] == 0.0

    def test_ring_of_two_has_single_pair(self):
        m = ring_rates(2, 1.0)
        assert m[0, 1] == 1.0 and np.count_nonzero(m) == 2

    def test_pipeline_is_open_chain(self):
        m = producer_consumer_rates(4, 2.0)
        assert m[0, 1] == 2.0 and m[2, 3] == 2.0 and m[0, 3] == 0.0

    def test_star_connects_hub_only(self):
        m = star_rates(4, 1.5, hub=1)
        assert m[1, 0] == 1.5 and m[1, 3] == 1.5 and m[0, 3] == 0.0

    def test_star_hub_range_checked(self):
        with pytest.raises(ValueError):
            star_rates(3, 1.0, hub=7)

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            all_pairs_rates(3, -1.0)

    def test_matrices_usable_as_system_parameters(self):
        from repro.core.parameters import SystemParameters

        params = SystemParameters(mu=[1.0] * 4, lam=ring_rates(4, 1.0))
        assert params.total_interaction_rate == pytest.approx(4.0)
