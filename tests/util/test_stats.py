"""Unit tests for repro.util.stats."""

import math

import numpy as np
import pytest

from repro.util.stats import (
    OnlineMoments,
    SummaryStats,
    confidence_interval,
    empirical_cdf,
    empirical_pdf,
    relative_error,
)


class TestOnlineMoments:
    def test_mean_and_variance_match_numpy(self, rng):
        samples = rng.normal(3.0, 2.0, size=500)
        acc = OnlineMoments()
        acc.extend(samples)
        assert acc.mean == pytest.approx(float(samples.mean()))
        assert acc.variance == pytest.approx(float(samples.var(ddof=1)))
        assert acc.count == 500

    def test_min_max(self):
        acc = OnlineMoments()
        acc.extend([3.0, -1.0, 7.0])
        assert acc.minimum == -1.0 and acc.maximum == 7.0

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            _ = OnlineMoments().mean

    def test_single_sample_variance_zero(self):
        acc = OnlineMoments()
        acc.add(5.0)
        assert acc.variance == 0.0 and acc.std == 0.0

    def test_merge_equals_combined(self, rng):
        a_samples = rng.normal(size=100)
        b_samples = rng.normal(loc=2.0, size=150)
        a, b, combined = OnlineMoments(), OnlineMoments(), OnlineMoments()
        a.extend(a_samples)
        b.extend(b_samples)
        combined.extend(np.concatenate([a_samples, b_samples]))
        merged = a.merge(b)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean)
        assert merged.variance == pytest.approx(combined.variance)

    def test_merge_with_empty(self):
        a = OnlineMoments()
        a.extend([1.0, 2.0])
        merged = a.merge(OnlineMoments())
        assert merged.count == 2 and merged.mean == pytest.approx(1.5)

    def test_stderr_decreases_with_samples(self, rng):
        acc = OnlineMoments()
        acc.extend(rng.normal(size=100))
        early = acc.stderr
        acc.extend(rng.normal(size=900))
        assert acc.stderr < early

    def test_summary_roundtrip(self):
        acc = OnlineMoments()
        acc.extend([1.0, 2.0, 3.0])
        summary = acc.summary()
        assert summary.count == 3 and summary.mean == pytest.approx(2.0)


class TestSummaryStats:
    def test_from_samples(self):
        s = SummaryStats.from_samples([2.0, 4.0, 6.0])
        assert s.mean == pytest.approx(4.0)
        assert s.minimum == 2.0 and s.maximum == 6.0

    def test_from_empty_raises(self):
        with pytest.raises(ValueError):
            SummaryStats.from_samples([])

    def test_ci95_contains_mean(self):
        s = SummaryStats.from_samples(list(range(100)))
        lo, hi = s.ci95()
        assert lo < s.mean < hi


class TestHelpers:
    def test_confidence_interval_covers_true_mean(self, rng):
        samples = rng.normal(10.0, 1.0, size=2000)
        lo, hi = confidence_interval(samples, level=0.99)
        assert lo < 10.0 < hi

    def test_confidence_interval_needs_two(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0])

    def test_empirical_cdf_monotone(self, rng):
        x, f = empirical_cdf(rng.exponential(size=50))
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(f) >= 0)
        assert f[-1] == pytest.approx(1.0)

    def test_empirical_pdf_integrates_to_one(self, rng):
        centres, density = empirical_pdf(rng.normal(size=5000), bins=40)
        width = centres[1] - centres[0]
        assert float((density * width).sum()) == pytest.approx(1.0, abs=0.05)

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(0.5, 0.0) == 0.5
