"""Unit tests for repro.util.linalg."""

import warnings

import numpy as np
import pytest
from scipy import sparse

from repro.util.linalg import (
    absorption_probabilities,
    embed_dtmc,
    expected_visits_absorbing,
    fundamental_matrix,
    is_generator_matrix,
    solve_linear,
    uniformization_rate,
)


def simple_generator():
    """Two transient states and implicit absorption (rows sum < 0 allowed? no)."""
    return np.array([[-2.0, 2.0, 0.0],
                     [1.0, -3.0, 2.0],
                     [0.0, 0.0, 0.0]])


class TestGeneratorChecks:
    def test_valid_generator(self):
        assert is_generator_matrix(simple_generator())

    def test_rejects_positive_diagonal(self):
        Q = np.array([[1.0, -1.0], [0.0, 0.0]])
        assert not is_generator_matrix(Q)

    def test_rejects_negative_off_diagonal(self):
        Q = np.array([[-1.0, 1.0], [-0.5, 0.5]])
        assert not is_generator_matrix(Q)

    def test_rejects_nonzero_row_sum(self):
        Q = np.array([[-1.0, 0.5], [0.0, 0.0]])
        assert not is_generator_matrix(Q)

    def test_rejects_non_square(self):
        assert not is_generator_matrix(np.zeros((2, 3)))

    def test_uniformization_rate_is_max_exit(self):
        assert uniformization_rate(simple_generator()) == pytest.approx(3.0)

    def test_uniformization_rate_rejects_all_zero(self):
        with pytest.raises(ValueError):
            uniformization_rate(np.zeros((2, 2)))


class TestEmbedding:
    def test_embed_produces_stochastic_matrix(self):
        P, G = embed_dtmc(simple_generator())
        assert G == pytest.approx(3.0)
        assert np.allclose(P.sum(axis=1), 1.0)
        assert np.all(P >= 0.0)

    def test_embed_with_custom_rate(self):
        P, G = embed_dtmc(simple_generator(), rate=6.0)
        assert G == 6.0
        # Self-loop probabilities grow with larger uniformisation constants.
        assert P[0, 0] == pytest.approx(1.0 - 2.0 / 6.0)

    def test_embed_rejects_too_small_rate(self):
        with pytest.raises(ValueError):
            embed_dtmc(simple_generator(), rate=1.0)

    def test_embed_rejects_non_generator(self):
        with pytest.raises(ValueError):
            embed_dtmc(np.array([[1.0, -1.0], [0.0, 0.0]]))


class TestAbsorbingChains:
    def test_fundamental_matrix_single_state(self):
        # One transient state with escape probability 0.5 per step: N = 2.
        N = fundamental_matrix(np.array([[0.5]]))
        assert N[0, 0] == pytest.approx(2.0)

    def test_expected_visits_geometric(self):
        T = np.array([[0.25]])
        visits = expected_visits_absorbing(T, start=0)
        assert visits[0] == pytest.approx(4.0 / 3.0)

    def test_expected_visits_two_states(self):
        # 0 -> 1 with prob 1, 1 -> absorbed with prob 1.
        T = np.array([[0.0, 1.0], [0.0, 0.0]])
        visits = expected_visits_absorbing(T, start=0)
        assert np.allclose(visits, [1.0, 1.0])

    def test_expected_visits_rejects_bad_start(self):
        with pytest.raises(ValueError):
            expected_visits_absorbing(np.array([[0.5]]), start=3)

    def test_absorption_probabilities_split(self):
        # From state 0: 0.3 to absorbing A, 0.7 to absorbing B.
        T = np.array([[0.0]])
        R = np.array([[0.3, 0.7]])
        probs = absorption_probabilities(T, R, start=0)
        assert np.allclose(probs, [0.3, 0.7])
        assert probs.sum() == pytest.approx(1.0)

    def test_solve_linear_matches_numpy(self):
        A = np.array([[2.0, 1.0], [1.0, 3.0]])
        b = np.array([1.0, 2.0])
        assert np.allclose(solve_linear(A, b), np.linalg.solve(A, b))

    def test_solve_linear_falls_back_for_singular(self):
        A = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = np.array([2.0, 2.0])
        with pytest.warns(RuntimeWarning, match="singular"):
            x = solve_linear(A, b)
        assert np.allclose(A @ x, b)

    def test_singular_fallback_warns_with_condition_context(self):
        # ISSUE satellite: the lstsq fallback must be diagnosable, not silent.
        A = np.array([[1.0, 2.0], [2.0, 4.0]])
        b = np.array([1.0, 2.0])
        with pytest.warns(RuntimeWarning) as record:
            solve_linear(A, b)
        message = str(record[0].message)
        assert "cond=" in message and "2x2" in message
        assert "generator" in message

    def test_regular_solve_does_not_warn(self):
        A = np.array([[2.0, 1.0], [1.0, 3.0]])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            solve_linear(A, np.array([1.0, 2.0]))

    def test_sparse_solve_matches_dense(self):
        A = np.array([[4.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]])
        b = np.array([1.0, -2.0, 0.5])
        x = solve_linear(sparse.csr_matrix(A), b)
        assert np.allclose(x, np.linalg.solve(A, b))

    def test_sparse_singular_falls_back_with_warning(self):
        A = sparse.csr_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))
        b = np.array([2.0, 2.0])
        with pytest.warns(RuntimeWarning, match="singular"):
            x = solve_linear(A, b)
        assert np.allclose(A @ x, b)

    def test_sparse_fundamental_and_visits_match_dense(self):
        T = np.array([[0.2, 0.3], [0.1, 0.4]])
        dense_n = fundamental_matrix(T)
        sparse_n = fundamental_matrix(sparse.csr_matrix(T))
        assert np.allclose(dense_n, sparse_n)
        dense_v = expected_visits_absorbing(T, start=0)
        sparse_v = expected_visits_absorbing(sparse.csr_matrix(T), start=0)
        assert np.allclose(dense_v, sparse_v)
