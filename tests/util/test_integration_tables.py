"""Unit tests for repro.util.integration and repro.util.tables."""

import math

import numpy as np
import pytest

from repro.util.integration import adaptive_quad, simpson, tail_integral, trapezoid_cumulative
from repro.util.tables import AsciiTable, format_float


class TestQuadrature:
    def test_adaptive_quad_polynomial(self):
        assert adaptive_quad(lambda t: 3 * t * t, 0.0, 2.0) == pytest.approx(8.0)

    def test_adaptive_quad_infinite_upper(self):
        assert adaptive_quad(lambda t: math.exp(-t), 0.0, np.inf) == pytest.approx(1.0)

    def test_tail_integral_is_mean_of_exponential(self):
        # P(T > t) = exp(-2 t)  =>  E[T] = 1/2.
        assert tail_integral(lambda t: math.exp(-2.0 * t)) == pytest.approx(0.5)

    def test_tail_integral_max_of_exponentials(self):
        # E[max of two iid Exp(1)] = 1.5.
        surv = lambda t: 1.0 - (1.0 - math.exp(-t)) ** 2
        assert tail_integral(surv) == pytest.approx(1.5, rel=1e-6)

    def test_trapezoid_cumulative_linear(self):
        x = np.linspace(0.0, 1.0, 11)
        cumulative = trapezoid_cumulative(x, np.ones_like(x))
        assert cumulative[0] == 0.0
        assert cumulative[-1] == pytest.approx(1.0)

    def test_trapezoid_shape_mismatch(self):
        with pytest.raises(ValueError):
            trapezoid_cumulative(np.arange(3.0), np.arange(4.0))

    def test_simpson_quadratic_exact(self):
        x = np.linspace(0.0, 1.0, 21)
        assert simpson(x, x ** 2) == pytest.approx(1.0 / 3.0, rel=1e-6)


class TestFormatting:
    def test_format_float_fixed(self):
        assert format_float(2.5, 3) == "2.500"

    def test_format_float_scientific_for_tiny(self):
        assert "e" in format_float(1e-7)

    def test_format_float_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_table_render_aligns_columns(self):
        table = AsciiTable(["name", "value"])
        table.add_row(["alpha", 1.0])
        table.add_row(["b", 23.456789])
        text = table.render()
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "23.4568" in text
        assert len(lines) == 4

    def test_table_rejects_wrong_arity(self):
        table = AsciiTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_table_add_rows_bulk(self):
        table = AsciiTable(["a"])
        table.add_rows([[1], [2], [3]])
        assert len(table.rows) == 3

    def test_column_widths_account_for_headers(self):
        table = AsciiTable(["long-header", "x"])
        table.add_row(["v", 1.0])
        widths = table.column_widths()
        assert widths[0] == len("long-header")
