"""Unit tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    as_float_array,
    check_index,
    check_non_negative,
    check_ordered,
    check_positive,
    check_probability,
    check_rate_matrix,
    check_symmetric_rates,
    require,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never shown")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")


class TestScalarChecks:
    def test_positive_accepts(self):
        assert check_positive(2.5) == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, "x")

    def test_non_negative_accepts_zero(self):
        assert check_non_negative(0.0) == 0.0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1)

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_probability_accepts(self, value):
        assert check_probability(value) == value

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan")])
    def test_probability_rejects(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad)

    def test_error_message_contains_name(self):
        with pytest.raises(ValueError, match="my_rate"):
            check_positive(-1, "my_rate")


class TestArrayChecks:
    def test_as_float_array_converts_list(self):
        arr = as_float_array([1, 2, 3])
        assert arr.dtype == float and arr.shape == (3,)

    def test_as_float_array_rejects_empty(self):
        with pytest.raises(ValueError):
            as_float_array([])

    def test_as_float_array_rejects_2d(self):
        with pytest.raises(ValueError):
            as_float_array(np.ones((2, 2)))

    def test_as_float_array_rejects_nan(self):
        with pytest.raises(ValueError):
            as_float_array([1.0, float("nan")])

    def test_rate_matrix_valid(self):
        m = np.array([[0.0, 1.0], [2.0, 0.0]])
        assert check_rate_matrix(m) is m or np.allclose(check_rate_matrix(m), m)

    def test_rate_matrix_rejects_nonzero_diagonal(self):
        with pytest.raises(ValueError, match="diagonal"):
            check_rate_matrix(np.array([[1.0, 0.0], [0.0, 0.0]]))

    def test_rate_matrix_rejects_negative(self):
        with pytest.raises(ValueError):
            check_rate_matrix(np.array([[0.0, -1.0], [1.0, 0.0]]))

    def test_rate_matrix_rejects_non_square(self):
        with pytest.raises(ValueError):
            check_rate_matrix(np.zeros((2, 3)))

    def test_symmetric_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            check_symmetric_rates(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_symmetric_accepts(self):
        m = np.array([[0.0, 3.0], [3.0, 0.0]])
        out = check_symmetric_rates(m)
        assert np.allclose(out, m)


class TestIndexAndOrder:
    def test_check_index_valid(self):
        assert check_index(2, 5) == 2

    @pytest.mark.parametrize("bad", [-1, 5, 100])
    def test_check_index_invalid(self, bad):
        with pytest.raises(ValueError):
            check_index(bad, 5)

    def test_check_ordered_accepts_sorted(self):
        check_ordered([1.0, 1.0, 2.0])

    def test_check_ordered_rejects_unsorted(self):
        with pytest.raises(ValueError):
            check_ordered([2.0, 1.0])
