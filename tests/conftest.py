"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.history import HistoryDiagram
from repro.core.parameters import SystemParameters
from repro.workloads.generators import homogeneous_workload, paper_table1_case
from repro.workloads.trace import figure1_trace


@pytest.fixture
def params_case1() -> SystemParameters:
    """Table 1 case 1: three symmetric processes (μ=λ=1)."""
    return paper_table1_case(1)


@pytest.fixture
def params_case2() -> SystemParameters:
    """Table 1 case 2: heterogeneous μ=(1.5, 1, 0.5), λ all 1."""
    return paper_table1_case(2)


@pytest.fixture
def two_process_params() -> SystemParameters:
    return SystemParameters.symmetric(2, mu=1.0, lam=0.5)


@pytest.fixture
def figure1_history() -> HistoryDiagram:
    """The hand-built history of the paper's Figure 1."""
    return figure1_trace().to_history()


@pytest.fixture
def simple_history() -> HistoryDiagram:
    """Two processes, two checkpoints each, one message in between."""
    history = HistoryDiagram(2)
    history.add_recovery_point(0, 1.0)
    history.add_recovery_point(1, 1.2)
    history.add_interaction(0, 1, 2.0)
    history.add_recovery_point(0, 3.0)
    history.add_recovery_point(1, 3.5)
    return history


@pytest.fixture
def small_workload():
    """A small, fast workload for runtime integration tests."""
    return homogeneous_workload(n=3, mu=1.0, lam=1.0, work=15.0, error_rate=0.05)


@pytest.fixture
def faultless_workload():
    """Same workload but with fault injection disabled."""
    return homogeneous_workload(n=3, mu=1.0, lam=1.0, work=15.0, error_rate=0.0)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
