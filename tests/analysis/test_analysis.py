"""Unit tests for the closed-form analyses (Sections 3 and 4)."""

import numpy as np
import pytest

from repro.analysis.comparison import StrategyComparison, recommend_scheme
from repro.analysis.order_statistics import (
    expected_maximum_exponential,
    expected_maximum_exponential_homogeneous,
    expected_range_exponential,
    harmonic_number,
    maximum_exponential_cdf,
    maximum_exponential_pdf,
)
from repro.analysis.prp_overhead import PRPOverheadModel
from repro.analysis.rollback_distance import AsynchronousRollbackModel
from repro.analysis.synchronized_loss import (
    SynchronizedLossModel,
    computation_loss,
    computation_loss_homogeneous,
)
from repro.core.parameters import SystemParameters


class TestOrderStatistics:
    def test_harmonic_numbers(self):
        assert harmonic_number(1) == 1.0
        assert harmonic_number(4) == pytest.approx(25.0 / 12.0)

    def test_single_variable_reduces_to_exponential_mean(self):
        assert expected_maximum_exponential([2.0]) == pytest.approx(0.5)

    def test_two_variables_closed_form(self):
        # E[max(Exp(a), Exp(b))] = 1/a + 1/b - 1/(a+b).
        assert expected_maximum_exponential([1.0, 2.0]) == pytest.approx(
            1.0 + 0.5 - 1.0 / 3.0)

    def test_homogeneous_matches_harmonic_formula(self):
        for n in (2, 3, 5, 8):
            assert expected_maximum_exponential([1.5] * n) == pytest.approx(
                expected_maximum_exponential_homogeneous(n, 1.5))

    def test_mean_matches_numerical_integration_of_survival(self):
        rates = [0.7, 1.3, 2.2]
        t = np.linspace(0.0, 60.0, 60001)
        survival = 1.0 - maximum_exponential_cdf(rates, t)
        assert np.trapezoid(survival, t) == pytest.approx(
            expected_maximum_exponential(rates), rel=1e-4)

    def test_pdf_integrates_to_one_and_matches_cdf(self):
        rates = [1.0, 0.5]
        t = np.linspace(0.0, 80.0, 80001)
        pdf = maximum_exponential_pdf(rates, t)
        assert np.trapezoid(pdf, t) == pytest.approx(1.0, abs=1e-4)
        cdf_numeric = np.cumsum(pdf) * (t[1] - t[0])
        assert cdf_numeric[-1] == pytest.approx(
            maximum_exponential_cdf(rates, t[-1]), abs=1e-3)

    def test_monte_carlo_agreement(self, rng):
        rates = [0.5, 1.0, 2.0]
        samples = np.max(rng.exponential(1.0 / np.asarray(rates), size=(20000, 3)),
                         axis=1)
        assert samples.mean() == pytest.approx(
            expected_maximum_exponential(rates), rel=0.03)

    def test_range_is_positive_and_less_than_max(self):
        rates = [1.0, 1.0, 1.0]
        rng_val = expected_range_exponential(rates)
        assert 0.0 < rng_val < expected_maximum_exponential(rates)

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            expected_maximum_exponential([1.0, 0.0])


class TestSynchronizedLoss:
    def test_exact_and_integral_methods_agree(self):
        mu = [0.6, 1.1, 2.4, 0.9]
        assert computation_loss(mu, method="exact") == pytest.approx(
            computation_loss(mu, method="integral"), rel=1e-6)

    def test_homogeneous_closed_form(self):
        # CL = n (H_n - 1) / mu.
        assert computation_loss_homogeneous(3, 1.0) == pytest.approx(
            3 * (harmonic_number(3) - 1.0))
        assert computation_loss([2.0] * 4) == pytest.approx(
            computation_loss_homogeneous(4, 2.0))

    def test_loss_zero_for_single_process(self):
        assert computation_loss([1.7]) == pytest.approx(0.0)

    def test_loss_increases_with_n(self):
        losses = [computation_loss_homogeneous(n, 1.0) for n in range(2, 8)]
        assert all(b > a for a, b in zip(losses, losses[1:]))

    def test_heterogeneity_increases_loss_at_constant_total_rate(self):
        balanced = computation_loss([1.0, 1.0, 1.0])
        skewed = computation_loss([1.8, 0.9, 0.3])
        assert skewed > balanced

    def test_model_per_process_losses(self):
        model = SynchronizedLossModel([2.0, 0.5])
        per_process = model.expected_loss_per_process()
        # The faster checkpointer (rate 2) waits longer on average.
        assert per_process[0] > per_process[1]
        assert per_process.sum() == pytest.approx(model.expected_loss())

    def test_report_and_rates(self):
        model = SynchronizedLossModel([1.0, 1.0, 1.0])
        report = model.report(sync_period=5.0)
        assert report["CL"] == pytest.approx(report["CL_integral"], rel=1e-6)
        assert report["relative_loss"] == pytest.approx(report["loss_rate"] / 3.0)
        with pytest.raises(ValueError):
            model.loss_rate(0.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            computation_loss([1.0, 1.0], method="guess")


class TestPRPOverhead:
    @pytest.fixture
    def model(self, params_case1):
        return PRPOverheadModel(params_case1, record_cost=0.05)

    def test_time_overhead_formulas(self, model):
        assert model.extra_time_per_rp() == pytest.approx(2 * 0.05)
        assert model.overhead_time_rate() == pytest.approx(3.0 * 0.1)
        assert model.overhead_per_process_rate() == pytest.approx(0.1)

    def test_storage_formulas(self, model):
        assert model.states_per_rp() == 3
        assert model.steady_state_storage() == 9
        assert model.save_rate() == pytest.approx(9.0)

    def test_rollback_bound_is_max_exponential(self, model, params_case1):
        assert model.rollback_distance_bound() == pytest.approx(
            expected_maximum_exponential(params_case1.mu))

    def test_quantile_is_monotone(self, model):
        assert model.rollback_distance_bound_quantile(0.9) > \
            model.rollback_distance_bound_quantile(0.5)
        with pytest.raises(ValueError):
            model.rollback_distance_bound_quantile(1.5)

    def test_efficiency_ratio_infinite_without_communication(self):
        params = SystemParameters(mu=[1.0, 1.0], lam=np.zeros((2, 2)))
        assert PRPOverheadModel(params).efficiency_ratio() == float("inf")

    def test_report_keys(self, model):
        report = model.report()
        assert {"extra_time_per_rp", "rollback_distance_bound",
                "steady_state_storage"} <= set(report)


class TestAsynchronousRollback:
    def test_inspection_paradox_at_least_half_mean(self, params_case1):
        model = AsynchronousRollbackModel(params_case1)
        assert model.expected_distance_inspection_paradox() >= \
            0.5 * model.expected_interval()

    def test_simulated_distance_matches_inspection_paradox(self, params_case1):
        model = AsynchronousRollbackModel(params_case1)
        report = model.simulate_distance(n_failures=4000, seed=3)
        assert report["mean_distance"] == pytest.approx(
            report["analytic_inspection_paradox"], rel=0.15)

    def test_report_keys(self, params_case2):
        report = AsynchronousRollbackModel(params_case2).report()
        assert "E[X]" in report and report["E[X]"] > 0


class TestComparison:
    def test_costs_reflect_paper_qualitative_claims(self, params_case1):
        comparison = StrategyComparison(params_case1, record_cost=0.02,
                                        sync_period=2.0)
        costs = comparison.all_costs()
        # Asynchronous: cheapest in normal operation.
        assert costs["asynchronous"].normal_overhead_rate == \
            min(c.normal_overhead_rate for c in costs.values())
        # PRP rollback distance is bounded below the asynchronous expectation.
        assert costs["pseudo-recovery-points"].expected_rollback_distance < \
            costs["asynchronous"].expected_rollback_distance * 2.0
        # PRP storage exceeds asynchronous per-line storage for small n.
        assert costs["pseudo-recovery-points"].storage_states > 0

    def test_total_cost_monotone_in_failure_rate(self, params_case1):
        costs = StrategyComparison(params_case1).asynchronous_costs()
        assert costs.total_cost(0.1) > costs.total_cost(0.01)

    def test_table_structure(self, params_case1):
        table = StrategyComparison(params_case1).table(failure_rate=0.05)
        assert set(table) == {"asynchronous", "synchronized", "pseudo-recovery-points"}
        for metrics in table.values():
            assert "total_cost" in metrics

    def test_recommend_deadline_disqualifies_async(self, params_case1):
        # A recovery deadline of 2.0 admits the PRP bound (H_3/mu ≈ 1.83) but rules
        # out both the asynchronous rollback (≈ 4.5) and the synchronized one
        # (≈ 2.8), so the PRP scheme must be recommended despite its overhead.
        scheme = recommend_scheme(params_case1, failure_rate=0.001, deadline=2.0)
        assert scheme == "pseudo-recovery-points"

    def test_recommend_low_failure_rate_prefers_cheap_normal_operation(self,
                                                                       params_case1):
        scheme = recommend_scheme(params_case1, failure_rate=1e-6)
        assert scheme == "asynchronous"
