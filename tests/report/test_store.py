"""ResultStore: content addressing, round-trip fidelity, cache semantics."""

import json
import os

import numpy as np
import pytest

from repro._version import __version__
from repro.experiments.common import ExperimentResult
from repro.report.store import (ResultStore, StoreRecord, canonical_params,
                                store_key)


def _result(name="unit_result"):
    result = ExperimentResult(
        name=name,
        paper_reference="Table 0 (unit fixture)",
        columns=["a", "b"],
        notes="fixture",
    )
    result.add_row("row 1", a=1.25, b=-3.5e-7)
    result.add_row("row 2", a=0.0, b=float(np.float64(2.718281828459045)))
    return result


class TestCanonicalParams:
    def test_tuples_and_lists_coincide(self):
        assert canonical_params({"x": (1, 2)}) == canonical_params({"x": [1, 2]})

    def test_numpy_scalars_collapse_to_python(self):
        canon = canonical_params({"mu": np.float64(0.5), "n": np.int64(4)})
        assert canon == {"mu": 0.5, "n": 4}
        assert type(canon["mu"]) is float and type(canon["n"]) is int

    def test_nested_structures_and_key_order(self):
        a = canonical_params({"b": {"y": 1, "x": (2.0,)}, "a": None})
        b = canonical_params({"a": None, "b": {"x": [2.0], "y": 1}})
        assert a == b
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_unstorable_value_raises(self):
        with pytest.raises(TypeError):
            canonical_params({"f": object()})


class TestStoreKey:
    def test_deterministic(self):
        k1 = store_key("table1", {"simulate": False}, 2024, None)
        k2 = store_key("table1", {"simulate": False}, 2024, None)
        assert k1 == k2 and len(k1) == 64

    def test_every_identity_component_changes_the_key(self):
        base = store_key("s", {"p": 1}, 1, 100)
        assert store_key("other", {"p": 1}, 1, 100) != base
        assert store_key("s", {"p": 2}, 1, 100) != base
        assert store_key("s", {"p": 1}, 2, 100) != base
        assert store_key("s", {"p": 1}, 1, 200) != base
        assert store_key("s", {"p": 1}, 1, 100, version="0.0.0") != base

    def test_backend_is_not_part_of_the_key(self):
        # Serial and process runs are bit-identical, so a cell computed on
        # one backend must be a cache hit for the other: the key has no
        # backend component at all (it is only metadata on the record).
        k = store_key("s", {"p": 1}, 1, 100)
        assert "serial" not in json.dumps({"k": k})


class TestNonFiniteParams:
    # Regression: store_key used to serialize NaN/inf params via json's
    # default allow_nan=True (bare NaN/Infinity tokens) while put() persisted
    # them as 'nan'-style *strings* — so the stored envelope hashed to a
    # different key than the one it was filed under and could never re-derive
    # its own address.  Non-finite floats are now rejected at the door.

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_canonical_params_rejects_non_finite_floats(self, bad):
        with pytest.raises(TypeError, match="not a finite number"):
            canonical_params({"lam": bad})

    def test_rejection_reaches_nested_and_numpy_values(self):
        with pytest.raises(TypeError, match="not a finite number"):
            canonical_params({"spec": {"rates": (1.0, float("nan"))}})
        with pytest.raises(TypeError, match="not a finite number"):
            canonical_params({"lam": np.float64("inf")})

    def test_store_key_refuses_non_finite_params(self):
        with pytest.raises(TypeError, match="not a finite number"):
            store_key("s", {"lam": float("inf")}, 1, 100)

    def test_put_refuses_non_finite_params(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with pytest.raises(TypeError, match="not a finite number"):
            store.put("unit", {"lam": float("nan")}, seed=1, reps=None,
                      backend="serial", elapsed_seconds=0.0, result=_result())

    def test_every_stored_envelope_rekeys_to_its_filename(self, tmp_path):
        # The self-addressing invariant the bug broke: hashing a stored
        # envelope's own params must reproduce the key it is filed under.
        store = ResultStore(str(tmp_path))
        store.put("unit", {"rho": (0.5, 1.0), "n": 4, "flag": True},
                  seed=7, reps=500, backend="serial", elapsed_seconds=0.1,
                  result=_result())
        store.put("unit", {"nested": {"lam": 0.25, "tags": ["a", "b"]}},
                  seed=None, reps=None, backend="serial", elapsed_seconds=0.0,
                  result=_result())
        envelopes = list(store.envelopes())
        assert len(envelopes) == 2
        for envelope in envelopes:
            rekeyed = store_key(str(envelope["scenario"]),
                                dict(envelope["params"]),
                                envelope["seed"], envelope["reps"],
                                version=str(envelope["version"]))
            assert rekeyed == envelope["key"]


class TestRoundTrip:
    def test_write_reload_bit_identical(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        params = {"rho": (0.5, 1.0), "n": 4, "flag": True, "label": "x"}
        result = _result()
        written = store.put("unit", params, seed=7, reps=500,
                            backend="serial", elapsed_seconds=0.125,
                            result=result)
        loaded = store.get(written.key)
        assert loaded is not None
        assert loaded.params == canonical_params(params)
        assert loaded.result.to_dict() == result.to_dict()
        assert loaded.seed == 7 and loaded.reps == 500
        assert loaded.backend == "serial"
        assert loaded.elapsed_seconds == 0.125
        assert loaded.version == __version__

    def test_scalar_bits_survive_json(self, tmp_path):
        # float64 payloads must reload to the exact same bit pattern.
        store = ResultStore(str(tmp_path))
        written = store.put("unit", {}, seed=None, reps=None,
                            backend="serial", elapsed_seconds=0.0,
                            result=_result())
        loaded = store.get(written.key)
        for row_a, row_b in zip(written.result.rows, loaded.result.rows):
            for column in ("a", "b"):
                assert np.float64(row_a.get(column)).tobytes() == \
                    np.float64(row_b.get(column)).tobytes()

    def test_get_with_scenario_hint_and_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        record = store.put("unit", {}, seed=1, reps=None, backend="serial",
                           elapsed_seconds=0.0, result=_result())
        assert store.get(record.key, scenario="unit") is not None
        assert store.get(record.key, scenario="absent") is None
        assert store.get("0" * 64) is None

    def test_index_records_metadata_without_rows(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("unit", {"p": 1}, seed=3, reps=10, backend="serial",
                  elapsed_seconds=0.5, result=_result())
        store.put("unit", {"p": 2}, seed=3, reps=10, backend="serial",
                  elapsed_seconds=0.5, result=_result())
        records = list(store.records())
        assert len(records) == len(store) == 2
        assert all("result" not in record for record in records)
        assert {record["params"]["p"] for record in records} == {1, 2}

    def test_atomic_object_files_only(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("unit", {}, seed=1, reps=None, backend="serial",
                  elapsed_seconds=0.0, result=_result())
        leftovers = [name for _, _, files in os.walk(tmp_path)
                     for name in files if name.endswith(".tmp")]
        assert leftovers == []

    def test_nonfinite_values_stored_as_strict_json(self, tmp_path):
        # 'q max/min' can overflow to inf; object files must stay standard
        # JSON (no bare Infinity/NaN tokens) and still reload to the same
        # float values.
        result = ExperimentResult(name="nf", paper_reference="",
                                  columns=["v"])
        result.add_row("r", v=float("inf"))
        store = ResultStore(str(tmp_path))
        record = store.put("nf", {}, seed=1, reps=None, backend="serial",
                           elapsed_seconds=0.0, result=result)
        with open(store.object_path(record.key, "nf"), encoding="utf-8") as f:
            raw = f.read()
        assert "Infinity" not in raw
        json.loads(raw)                    # parses under the strict grammar
        assert store.get(record.key).result.rows[0].get("v") == float("inf")

    def test_envelope_roundtrip_through_dataclass(self, tmp_path):
        store = ResultStore(str(tmp_path))
        record = store.put("unit", {"q": 0.25}, seed=11, reps=1,
                           backend="process(workers=2)", elapsed_seconds=1.5,
                           result=_result())
        clone = StoreRecord.from_envelope(record.to_envelope())
        assert clone == record
