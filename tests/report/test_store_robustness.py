"""ResultStore robustness: corrupt index lines, compaction, concurrent puts."""

import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments.common import ExperimentResult
from repro.report.store import FileLock, ResultStore


def _result(name="robustness_fixture", value=1.25):
    result = ExperimentResult(
        name=name,
        paper_reference="unit fixture",
        columns=["a"],
        notes="fixture",
    )
    result.add_row("row", a=value)
    return result


def _put(store, params, seed=7):
    return store.put("scenario", params, seed, 100, backend="serial",
                     elapsed_seconds=0.5, result=_result())


class TestCorruptIndexTolerance:
    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        store = ResultStore(str(tmp_path))
        _put(store, {"x": 1})
        _put(store, {"x": 2})
        # Simulate a crash mid-append: the last line is cut short.
        with open(store.index_path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "deadbeef", "scenario": "trunc')
        records = list(store.records())
        assert len(records) == 2
        assert len(store) == 2

    def test_garbage_line_is_skipped(self, tmp_path):
        store = ResultStore(str(tmp_path))
        _put(store, {"x": 1})
        with open(store.index_path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write("[1, 2, 3]\n")        # valid JSON, wrong shape
        _put(store, {"x": 2})
        assert len(store) == 2
        # The records that do parse keep their metadata intact.
        keys = {record["key"] for record in store.records()}
        assert len(keys) == 2

    def test_objects_survive_a_corrupt_index(self, tmp_path):
        store = ResultStore(str(tmp_path))
        record = _put(store, {"x": 1})
        with open(store.index_path, "w", encoding="utf-8") as handle:
            handle.write("garbage\n")
        # Index is advisory: the content-addressed object still loads.
        hit = store.get(record.key, "scenario")
        assert hit is not None
        assert hit.result.to_dict() == _result().to_dict()


class TestCompact:
    def test_compact_rebuilds_index_from_objects(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first = _put(store, {"x": 1})
        second = _put(store, {"x": 2}, seed=8)
        os.remove(store.index_path)
        assert list(store.records()) == []     # index gone, objects remain
        assert len(store) == 2                 # ...and objects are authority
        assert store.compact() == 2
        keys = {record["key"] for record in store.records()}
        assert keys == {first.key, second.key}
        for record in store.records():
            assert "result" not in record      # index carries metadata only

    def test_compact_drops_corrupt_lines_and_duplicates(self, tmp_path):
        store = ResultStore(str(tmp_path))
        record = _put(store, {"x": 1})
        # Duplicate index entry (a double append) plus garbage.
        with open(store.index_path, "r", encoding="utf-8") as handle:
            first_line = handle.readline()
        with open(store.index_path, "a", encoding="utf-8") as handle:
            handle.write(first_line)
            handle.write("garbage\n")
        assert store.compact() == 1
        records = list(store.records())
        assert len(records) == 1
        assert records[0]["key"] == record.key

    def test_compact_empty_store(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.compact() == 0
        assert len(store) == 0


def _hammer_worker(args):
    """Process-pool entry: append one record to the shared store."""
    root, worker_id = args
    store = ResultStore(root)
    store.put("scenario", {"worker": worker_id}, worker_id, 100,
              backend="serial", elapsed_seconds=0.1,
              result=_result(value=float(worker_id)))
    return worker_id


class TestConcurrentPuts:
    @pytest.mark.slow
    def test_process_pool_puts_never_interleave_index_lines(self, tmp_path):
        root = str(tmp_path)
        workers = 16
        with ProcessPoolExecutor(max_workers=8) as pool:
            done = list(pool.map(_hammer_worker, [(root, i)
                                                  for i in range(workers)]))
        assert sorted(done) == list(range(workers))
        store = ResultStore(root)
        # Every appended line parses — no torn/interleaved writes — and
        # every record is individually loadable.
        with open(store.index_path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == workers
        for line in lines:
            entry = json.loads(line)
            assert store.get(entry["key"], "scenario") is not None

    def test_file_lock_is_reentrant_across_instances(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with FileLock(path):
            pass
        with FileLock(path):        # fresh fd, lock released by first exit
            pass
        assert os.path.exists(path)
