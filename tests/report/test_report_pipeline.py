"""Report pipeline: rendering, REPORT.md, cache/resume, and the CLI."""

import json
import os

import pytest

from repro.__main__ import main as cli_main
from repro.experiments.common import ExperimentResult
from repro.report import (ResultStore, figure_backend, generate_report,
                          render_artifacts, result_to_markdown_table)
from repro.report.pipeline import default_scenario_order
from repro.report.svg import ChartSeries, LineChart, render_line_chart_svg
from repro.runner import (ExperimentRunner, ScenarioSpec, register_scenario,
                          run_scenario, unregister_scenario)


@pytest.fixture
def probe_scenario():
    """A registered one-row scenario that counts its executions."""
    calls = []

    def probe(ctx, *, knob: float = 1.0) -> ExperimentResult:
        calls.append(knob)
        result = ExperimentResult(name="probe", paper_reference="(test)",
                                  columns=["value"])
        result.add_row("only", value=knob * 2.0)
        return result

    register_scenario(ScenarioSpec(name="tmp_report_probe", func=probe,
                                   description="execution-counting probe"))
    try:
        yield calls
    finally:
        unregister_scenario("tmp_report_probe")


class TestRunnerStoreHook:
    def test_write_through_then_cache_hit(self, tmp_path, probe_scenario):
        store = ResultStore(str(tmp_path / "store"))
        runner = ExperimentRunner(seed=5, store=store)
        first = runner.run_record("tmp_report_probe")
        second = runner.run_record("tmp_report_probe")
        assert probe_scenario == [1.0]          # executed exactly once
        assert not first.cached and second.cached
        assert first.key == second.key
        assert second.result.to_dict() == first.result.to_dict()

    def test_param_seed_and_reps_changes_miss(self, tmp_path, probe_scenario):
        store = ResultStore(str(tmp_path))
        runner = ExperimentRunner(seed=5, store=store)
        runner.run_record("tmp_report_probe")
        runner.run_record("tmp_report_probe", knob=2.0)
        runner.run_record("tmp_report_probe", seed=6)
        runner.run_record("tmp_report_probe", reps=10)
        assert probe_scenario == [1.0, 2.0, 1.0, 1.0]   # four distinct cells

    def test_numpy_seed_is_storable(self, tmp_path, probe_scenario):
        # np.arange sweeps hand the runner np.int64 seeds; the store must
        # canonicalise them instead of dying in json.dumps.
        import numpy as np
        store = ResultStore(str(tmp_path))
        runner = ExperimentRunner(store=store)
        first = runner.run_record("tmp_report_probe", seed=np.int64(5))
        second = runner.run_record("tmp_report_probe", seed=5)
        assert second.cached and first.key == second.key
        assert probe_scenario == [1.0]

    def test_force_recomputes(self, tmp_path, probe_scenario):
        store = ResultStore(str(tmp_path))
        runner = ExperimentRunner(seed=5, store=store)
        runner.run_record("tmp_report_probe")
        record = runner.run_record("tmp_report_probe", force=True)
        assert not record.cached
        assert probe_scenario == [1.0, 1.0]

    def test_resume_across_runner_instances(self, tmp_path, probe_scenario):
        # The resume story: a new runner (new process, interrupted sweep)
        # pointed at the same store picks up the finished cells.
        store_root = str(tmp_path / "store")
        ExperimentRunner(seed=5, store=ResultStore(store_root)) \
            .run_record("tmp_report_probe")
        record = ExperimentRunner(seed=5, store=ResultStore(store_root)) \
            .run_record("tmp_report_probe")
        assert record.cached and probe_scenario == [1.0]

    def test_fresh_entropy_runs_are_never_cached(self, tmp_path,
                                                 probe_scenario):
        # seed=None draws fresh OS entropy: two such runs are different
        # experiments and must not be served from (or written to) the store.
        store = ResultStore(str(tmp_path))
        runner = ExperimentRunner(store=store)       # no seed anywhere
        a = runner.run_record("tmp_report_probe")
        b = runner.run_record("tmp_report_probe")
        assert not a.cached and not b.cached and a.key is None
        assert probe_scenario == [1.0, 1.0]
        assert len(store) == 0

    def test_omitted_reps_keys_as_the_scenario_default(self, tmp_path):
        calls = []

        def probe(ctx, **_):
            calls.append(ctx.reps_or(7))
            result = ExperimentResult(name="p", paper_reference="",
                                      columns=["v"])
            result.add_row("r", v=1.0)
            return result

        register_scenario(ScenarioSpec(name="tmp_reps_probe", func=probe,
                                       default_reps=7))
        try:
            runner = ExperimentRunner(seed=5, store=ResultStore(str(tmp_path)))
            first = runner.run_record("tmp_reps_probe")            # reps=None
            second = runner.run_record("tmp_reps_probe", reps=7)   # explicit
            assert first.key == second.key and second.cached
            assert first.reps == second.reps == 7
            assert calls == [7]
        finally:
            unregister_scenario("tmp_reps_probe")

    def test_no_store_means_no_caching(self, probe_scenario):
        runner = ExperimentRunner(seed=5)
        a = runner.run_record("tmp_report_probe")
        b = runner.run_record("tmp_report_probe")
        assert not a.cached and not b.cached and a.key is None
        assert probe_scenario == [1.0, 1.0]

    def test_run_scenario_accepts_store(self, tmp_path, probe_scenario):
        store = ResultStore(str(tmp_path))
        run_scenario("tmp_report_probe", seed=1, store=store)
        run_scenario("tmp_report_probe", seed=1, store=store)
        assert probe_scenario == [1.0]


class TestRenderers:
    def test_figure5_artifact(self, tmp_path):
        result = run_scenario("figure5", n_values=(2, 3, 4),
                              rho_values=(0.5, 1.0),
                              cross_check_full_chain_up_to=0)
        artifacts = render_artifacts("figure5", result, str(tmp_path), "figure5")
        assert len(artifacts) == 1
        assert artifacts[0].kind == "figure"
        assert os.path.isfile(artifacts[0].path)

    def test_figure6_artifact(self, tmp_path):
        result = run_scenario("figure6", sample_times=(0.0, 0.5, 1.0))
        (artifact,) = render_artifacts("figure6", result, str(tmp_path), "f6")
        with open(artifact.path, encoding="utf-8") as handle:
            body = handle.read()
        if figure_backend() == "builtin-svg":
            assert body.startswith("<svg") and "case 1" in body

    def test_table_renderer_writes_markdown(self, tmp_path):
        result = run_scenario("table1")
        (artifact,) = render_artifacts("table", result, str(tmp_path), "table1")
        assert artifact.kind == "table"
        with open(artifact.path, encoding="utf-8") as handle:
            body = handle.read()
        assert "| case |" in body and "case 1" in body

    def test_table_renderer_honours_digits(self, tmp_path):
        result = ExperimentResult(name="d", paper_reference="", columns=["v"])
        result.add_row("r", v=1.23456789)
        (two,) = render_artifacts("table", result, str(tmp_path), "d2", 2)
        with open(two.path, encoding="utf-8") as handle:
            assert "| r | 1.2 |" in handle.read()

    def test_unknown_renderer_raises(self, tmp_path):
        result = run_scenario("figure6")
        with pytest.raises(KeyError, match="unknown renderer"):
            render_artifacts("nope", result, str(tmp_path), "x")

    def test_none_renderer_renders_nothing(self, tmp_path):
        result = run_scenario("figure6")
        assert render_artifacts(None, result, str(tmp_path), "x") == []

    def test_markdown_table_shape(self):
        result = ExperimentResult(name="t", paper_reference="", columns=["c"])
        result.add_row("r", c=0.5)
        table = result_to_markdown_table(result)
        assert table.splitlines()[0] == "| case | c |"
        assert "| r | 0.5 |" in table

    def test_markdown_table_survives_nonfinite_values(self):
        # q max/min can overflow to inf at steep gradients; the table must
        # render it, not crash the report after all the compute is done.
        result = ExperimentResult(name="t", paper_reference="",
                                  columns=["a", "b"])
        result.add_row("r", a=float("inf"), b=float("nan"))
        table = result_to_markdown_table(result)
        assert "| r | inf | nan |" in table


class TestSvgFallback:
    def test_line_chart_is_wellformed_xml(self):
        import xml.etree.ElementTree as ET
        chart = LineChart(title="t < 1 & x", x_label="x", y_label="y",
                          x=[1, 2, 3])
        chart.add_series("a", [1.0, 2.0, 4.0])
        chart.add_series("b", [2.0, 1.0, 0.5])
        document = render_line_chart_svg(chart)
        root = ET.fromstring(document)
        assert root.tag.endswith("svg")

    def test_log_scale_constant_series_renders(self):
        # A probability column pinned at one power of 10 must not divide by
        # a zero log-range.
        chart = LineChart(title="const", x_label="x", y_label="y",
                          x=[1, 2, 3], log_y=True)
        chart.add_series("a", [1.0, 1.0, 1.0])
        assert "polyline" in render_line_chart_svg(chart)

    def test_log_scale_skips_nonpositive_points(self):
        chart = LineChart(title="log", x_label="x", y_label="y",
                          x=[1, 2, 3], log_y=True)
        chart.add_series("a", [0.0, 10.0, 100.0])
        document = render_line_chart_svg(chart)
        assert "polyline" in document

    def test_too_many_series_is_an_error(self):
        chart = LineChart(title="t", x_label="x", y_label="y", x=[1, 2])
        for index in range(9):
            chart.add_series(f"s{index}", [1.0, 2.0])
        with pytest.raises(ValueError, match="at most"):
            render_line_chart_svg(chart)


class TestGenerateReport:
    def test_report_for_tiny_scenario(self, tmp_path, probe_scenario):
        summary = generate_report(["tmp_report_probe"],
                                  out_dir=str(tmp_path / "reports"))
        assert os.path.isfile(summary.report_path)
        with open(summary.report_path, encoding="utf-8") as handle:
            report = handle.read()
        assert "tmp_report_probe" in report
        assert "repro version" in report
        assert summary.computed == 1 and summary.cache_hits == 0
        # TOC anchors must match GitHub's slugs, which keep underscores.
        assert "](#tmp_report_probe)" in report
        assert "## tmp_report_probe" in report

    def test_rerun_hits_cache_and_skips_execution(self, tmp_path,
                                                  probe_scenario):
        out = str(tmp_path / "reports")
        generate_report(["tmp_report_probe"], out_dir=out)
        summary = generate_report(["tmp_report_probe"], out_dir=out)
        # ISSUE acceptance: the re-run re-renders from the store without
        # executing any scenario.
        assert probe_scenario == [1.0]
        assert summary.cache_hits == 1 and summary.computed == 0
        with open(summary.report_path, encoding="utf-8") as handle:
            assert "store cache" in handle.read()

    def test_paper_artifacts_present(self, tmp_path):
        # Small-parameter variants of the real paper scenarios still route
        # through their declared renderers into figures/ and tables/.
        out = str(tmp_path / "reports")
        summary = generate_report(["table1", "figure6"], out_dir=out)
        kinds = {os.path.basename(path) for path in summary.artifact_paths}
        extension = "png" if figure_backend() == "matplotlib" else "svg"
        assert kinds == {"table1.md", f"figure6.{extension}"}
        with open(summary.report_path, encoding="utf-8") as handle:
            report = handle.read()
        assert f"figures/figure6.{extension}" in report
        assert "tables/table1.md" in report

    def test_default_scenario_order_is_paper_first(self):
        names = ["validation", "figure6", "table1", "aaa"]
        assert default_scenario_order(names) == \
            ["table1", "figure6", "aaa", "validation"]


class TestReportCLI:
    def test_smoke_on_tiny_scenario(self, tmp_path, capsys, probe_scenario):
        out = str(tmp_path / "r")
        assert cli_main(["report", "tmp_report_probe", "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "report written to" in stdout
        assert os.path.isfile(os.path.join(out, "REPORT.md"))

    def test_cli_rerun_is_all_cache_hits(self, tmp_path, capsys,
                                         probe_scenario):
        out = str(tmp_path / "r")
        assert cli_main(["report", "tmp_report_probe", "--out", out]) == 0
        capsys.readouterr()
        assert cli_main(["report", "tmp_report_probe", "--out", out]) == 0
        stdout = capsys.readouterr().out
        assert "0 scenario(s) computed, 1 served from the store" in stdout
        assert probe_scenario == [1.0]

    def test_requires_scenarios_or_all(self):
        with pytest.raises(SystemExit):
            cli_main(["report"])
        with pytest.raises(SystemExit):
            cli_main(["report", "table1", "--all"])

    def test_unknown_scenario_fails_before_running(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown scenario"):
            cli_main(["report", "_no_such_scenario",
                      "--out", str(tmp_path / "r")])
        assert not os.path.exists(tmp_path / "r" / "REPORT.md")


class TestRunCLIStoreAndForce:
    def test_run_store_cache_hit(self, tmp_path, capsys, probe_scenario):
        store = str(tmp_path / "store")
        assert cli_main(["run", "tmp_report_probe", "--store", store]) == 0
        capsys.readouterr()
        assert cli_main(["run", "tmp_report_probe", "--store", store]) == 0
        stdout = capsys.readouterr().out
        assert "cache hit" in stdout
        assert probe_scenario == [1.0]

    def test_force_overwrites_output_without_recomputing(self, tmp_path,
                                                         capsys,
                                                         probe_scenario):
        # --force governs the -o overwrite only; exporting a cached result
        # over an existing file must not trigger a recompute (--recompute
        # exists for that).
        store = str(tmp_path / "store")
        path = tmp_path / "out.json"
        assert cli_main(["run", "tmp_report_probe", "--store", store,
                         "-o", str(path)]) == 0
        capsys.readouterr()
        assert cli_main(["run", "tmp_report_probe", "--store", store,
                         "-o", str(path), "--force"]) == 0
        assert "cache hit" in capsys.readouterr().out
        assert probe_scenario == [1.0]
        assert cli_main(["run", "tmp_report_probe", "--store", store,
                         "--recompute"]) == 0
        assert probe_scenario == [1.0, 1.0]

    def test_output_refuses_overwrite_without_force(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert cli_main(["run", "figure6", "-o", str(path)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="--force"):
            cli_main(["run", "figure6", "-o", str(path)])
        assert cli_main(["run", "figure6", "-o", str(path), "--force"]) == 0

    def test_output_envelope_carries_version(self, tmp_path):
        from repro._version import __version__
        path = tmp_path / "out.json"
        assert cli_main(["run", "figure6", "-o", str(path)]) == 0
        with open(path, encoding="utf-8") as handle:
            envelope = json.load(handle)
        assert envelope["version"] == __version__
        assert envelope["cached"] is False

    def test_cached_envelope_reports_original_backend(self, tmp_path, capsys,
                                                      probe_scenario):
        # Cache-served -o envelopes must credit the backend that computed
        # the result and say they were cached.
        store = str(tmp_path / "store")
        assert cli_main(["run", "tmp_report_probe", "--store", store]) == 0
        path = tmp_path / "out.json"
        assert cli_main(["run", "tmp_report_probe", "--store", store,
                         "--backend", "process", "--workers", "2",
                         "-o", str(path)]) == 0
        with open(path, encoding="utf-8") as handle:
            envelope = json.load(handle)
        assert envelope["cached"] is True
        assert envelope["backend"] == "serial"      # the computing run's
        assert probe_scenario == [1.0]
