"""ShardedResultStore: partitioning, legacy read-through, migration."""

import json
import os

import pytest

from repro.experiments.common import ExperimentResult
from repro.report.sharded import (DEFAULT_SHARDS, ShardedResultStore,
                                  shard_of_key)
from repro.report.store import ResultStore, store_key


def _result(value=2.5):
    result = ExperimentResult(
        name="sharded_fixture",
        paper_reference="unit fixture",
        columns=["a"],
        notes="fixture",
    )
    result.add_row("row", a=value)
    return result


def _put(store, params, seed=7, value=2.5):
    return store.put("scenario", params, seed, 100, backend="serial",
                     elapsed_seconds=0.25, result=_result(value))


class TestShardOfKey:
    def test_pure_and_in_range(self):
        key = store_key("scenario", {"x": 1}, 7, 100)
        assert shard_of_key(key, 16) == shard_of_key(key, 16)
        assert 0 <= shard_of_key(key, 16) < 16
        assert shard_of_key(key, 1) == 0

    def test_distribution_covers_shards(self):
        shards = {shard_of_key(store_key("s", {"x": i}, 7, 100), 4)
                  for i in range(64)}
        assert shards == {0, 1, 2, 3}


class TestKeyCompatibility:
    def test_key_identical_to_flat_store(self, tmp_path):
        flat = ResultStore(str(tmp_path / "flat"))
        sharded = ShardedResultStore(str(tmp_path / "sharded"))
        assert sharded.key("scenario", {"x": 1}, 7, 100) == \
            flat.key("scenario", {"x": 1}, 7, 100)


class TestShardedRoundTrip:
    def test_put_get_roundtrip(self, tmp_path):
        store = ShardedResultStore(str(tmp_path))
        record = _put(store, {"x": 1})
        hit = store.get(record.key, "scenario")
        assert hit is not None
        assert hit.result.to_dict() == _result().to_dict()
        assert store.contains(record.key)
        assert len(store) == 1

    def test_records_land_in_their_shard(self, tmp_path):
        store = ShardedResultStore(str(tmp_path), shards=4)
        records = [_put(store, {"x": i}) for i in range(8)]
        for record in records:
            shard = shard_of_key(record.key, 4)
            path = store.shard_store(shard).object_path(record.key, "scenario")
            assert os.path.isfile(path)
        # The root-level flat layout stays empty — no legacy writes.
        assert not os.path.isdir(os.path.join(str(tmp_path), "objects"))

    def test_shard_count_persisted_and_enforced(self, tmp_path):
        store = ShardedResultStore(str(tmp_path), shards=4)
        _put(store, {"x": 1})
        assert ShardedResultStore(str(tmp_path)).shards == 4
        assert ShardedResultStore(str(tmp_path), shards=4).shards == 4
        with pytest.raises(ValueError):
            ShardedResultStore(str(tmp_path), shards=8)

    def test_compact_rebuilds_shard_indexes(self, tmp_path):
        store = ShardedResultStore(str(tmp_path), shards=4)
        records = [_put(store, {"x": i}) for i in range(6)]
        for index in range(4):
            path = store.shard_store(index).index_path
            if os.path.isfile(path):
                os.remove(path)
        assert store.compact() == 6
        assert len(store) == 6
        assert {r["key"] for r in store.records()} == \
            {r.key for r in records}


class TestLegacyReadThrough:
    def test_flat_store_cells_are_served(self, tmp_path):
        flat = ResultStore(str(tmp_path))
        record = _put(flat, {"x": 1})
        sharded = ShardedResultStore(str(tmp_path))
        hit = sharded.get(record.key, "scenario")
        assert hit is not None
        assert hit.result.to_dict() == _result().to_dict()
        assert sharded.contains(record.key)
        assert len(sharded) == 1

    def test_migrate_moves_objects_into_shards(self, tmp_path):
        flat = ResultStore(str(tmp_path))
        records = [_put(flat, {"x": i}, value=float(i)) for i in range(10)]
        sharded = ShardedResultStore(str(tmp_path), shards=4)
        assert sharded.migrate() == 10
        # Flat layout is now empty; every cell still loads (from its shard).
        assert not os.path.isdir(os.path.join(str(tmp_path), "objects"))
        assert len(ResultStore(str(tmp_path))) == 0
        for index, record in enumerate(records):
            hit = sharded.get(record.key, "scenario")
            assert hit is not None
            assert hit.result.to_dict() == _result(float(index)).to_dict()
        assert len(sharded) == 10
        # Migration is idempotent.
        assert sharded.migrate() == 0

    def test_mixed_store_counts_both_layouts(self, tmp_path):
        flat = ResultStore(str(tmp_path))
        _put(flat, {"x": "legacy"})
        sharded = ShardedResultStore(str(tmp_path))
        _put(sharded, {"x": "new"})
        assert len(sharded) == 2
        assert len({r["key"] for r in sharded.records()}) == 2


class TestRunnerIntegration:
    def test_sharded_store_drops_into_the_runner(self, tmp_path):
        from repro.runner import ExperimentRunner

        store = ShardedResultStore(str(tmp_path), shards=4)
        runner = ExperimentRunner(store=store)
        first = runner.run_record("validation", seed=7, reps=50)
        assert first.cached is False
        second = runner.run_record("validation", seed=7, reps=50)
        assert second.cached is True
        assert second.key == first.key
        assert second.result.to_dict() == first.result.to_dict()
