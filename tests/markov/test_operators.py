"""Tests for the TransientOperator backends and the sparse generator path.

Pins the ISSUE acceptance criterion: dense and sparse backends agree on
pdf/cdf/moments to <= 1e-8 for n <= 8, and the backend auto-selection policy
routes small chains dense and large chains sparse.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.core.parameters import SystemParameters
from repro.markov.ctmc import PhaseType
from repro.markov.generator import (build_generator, build_generator_sparse,
                                    build_phase_type)
from repro.markov.operators import (DENSE_STATE_LIMIT, DenseTransientOperator,
                                    SparseTransientOperator, as_operator,
                                    select_backend)
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel
from repro.markov.simplified import SimplifiedChain
from repro.markov.state_space import AsyncStateSpace


def heterogeneous_params(n: int) -> SystemParameters:
    """A deliberately non-exchangeable system (mu gradient + locality decay)."""
    mu = np.linspace(1.0, 2.0, n)
    idx = np.arange(n)
    lam = 0.5 / (1.0 + np.abs(idx[:, None] - idx[None, :]))
    np.fill_diagonal(lam, 0.0)
    return SystemParameters(mu=mu, lam=lam)


class TestSparseGenerator:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_matches_dense_builder(self, n):
        params = heterogeneous_params(n)
        dense, _ = build_generator(params)
        sp, space = build_generator_sparse(params)
        assert sp.shape == dense.shape
        assert np.max(np.abs(sp.toarray() - dense)) < 1e-12
        assert space.n_states == (1 << n) + 1

    def test_symmetric_case_matches_dense(self, params_case1):
        dense, _ = build_generator(params_case1)
        sp, _ = build_generator_sparse(params_case1)
        assert np.max(np.abs(sp.toarray() - dense)) < 1e-12

    def test_nonzero_count_is_subquadratic(self):
        # O(n^2 * 2^n) nonzeros, not (2^n + 1)^2 — the point of CSR assembly.
        params = heterogeneous_params(10)
        sp, space = build_generator_sparse(params)
        assert sp.nnz < space.n_states * (10 * 11)
        assert sp.nnz < space.n_states ** 2 / 40

    def test_zero_rate_pairs_produce_no_entries(self):
        params = SystemParameters.from_pair_rates([1.0, 1.0, 1.0],
                                                  [(0, 1, 1.0)])
        sp, space = build_generator_sparse(params)
        H = sp.toarray()
        src = space.index_of_mask(0b101)
        assert H[src, space.index_of_mask(0b000)] == 0.0

    def test_absorbing_row_is_empty(self):
        sp, space = build_generator_sparse(heterogeneous_params(4))
        assert np.max(np.abs(sp.toarray()[space.absorbing_index])) == 0.0


class TestBackendSelection:
    def test_select_backend_policy(self):
        assert select_backend(DENSE_STATE_LIMIT) == "dense"
        assert select_backend(DENSE_STATE_LIMIT + 1) == "sparse"
        assert select_backend(10, "sparse") == "sparse"
        assert select_backend(10 ** 6, "dense") == "dense"
        with pytest.raises(ValueError):
            select_backend(10, "quantum")

    def test_build_phase_type_auto_small_is_dense(self, params_case2):
        ph = build_phase_type(params_case2, backend="auto")
        assert not ph.is_sparse and ph.backend == "dense"

    def test_build_phase_type_auto_large_is_sparse(self):
        ph = build_phase_type(heterogeneous_params(10), backend="auto")
        assert ph.is_sparse and ph.backend == "sparse"

    def test_model_reports_analytic_backend(self, params_case1):
        lumped = RecoveryLineIntervalModel(params_case1)
        assert lumped.analytic_backend == "lumped"
        full = RecoveryLineIntervalModel(params_case1, prefer_simplified=False)
        assert full.analytic_backend == "dense"
        big = RecoveryLineIntervalModel(heterogeneous_params(10))
        assert big.analytic_backend == "sparse"
        with pytest.raises(ValueError):
            RecoveryLineIntervalModel(params_case1, backend="quantum")

    def test_forced_dense_stays_dense_above_auto_threshold(self):
        # Regression: a forced dense build at n=10 (order 1024 > the auto
        # threshold) must evaluate with the dense operator, not silently
        # convert to sparse.
        ph = build_phase_type(heterogeneous_params(10), backend="dense")
        assert not ph.is_sparse
        assert ph.backend == "dense"
        assert isinstance(ph.operator, DenseTransientOperator)

    def test_model_counts_honour_forced_backend(self, params_case2):
        # expected_rp_counts / completion_probabilities must reuse the model's
        # phase type (and therefore its forced backend), not rebuild on auto.
        model = RecoveryLineIntervalModel(params_case2, backend="sparse")
        assert model._counting_phase_type is model.phase_type
        assert model.phase_type.is_sparse
        auto = RecoveryLineIntervalModel(params_case2)
        assert np.allclose(model.completion_probabilities(),
                           auto.completion_probabilities(), atol=1e-9)
        assert np.allclose(model.expected_rp_counts("interior"),
                           auto.expected_rp_counts("interior"), atol=1e-9)

    def test_as_operator_dispatch(self):
        T = np.array([[-2.0, 1.0], [0.5, -1.0]])
        assert isinstance(as_operator(T), DenseTransientOperator)
        assert isinstance(as_operator(sparse.csr_matrix(T)),
                          SparseTransientOperator)
        assert isinstance(as_operator(T, backend="sparse"),
                          SparseTransientOperator)
        assert isinstance(as_operator(sparse.csr_matrix(T), backend="dense"),
                          DenseTransientOperator)
        op = as_operator(T)
        assert as_operator(op) is op


class TestDenseSparseAgreement:
    """ISSUE acceptance: agreement to <= 1e-8 on pdf/cdf/moments for n <= 8."""

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_pdf_cdf_moments_agree(self, n):
        params = heterogeneous_params(n)
        dense = build_phase_type(params, backend="dense")
        sp = build_phase_type(params, backend="sparse")
        uniform = np.linspace(0.0, 4.0, 17)
        irregular = np.array([0.0, 0.013, 0.4, 0.4, 2.7, 1.1])
        for times in (uniform, irregular):
            assert np.max(np.abs(dense.pdf(times) - sp.pdf(times))) < 1e-8
            assert np.max(np.abs(dense.cdf(times) - sp.cdf(times))) < 1e-8
            assert np.max(np.abs(dense.sf(times) - sp.sf(times))) < 1e-8
        for k in (1, 2, 3):
            assert sp.moment(k) == pytest.approx(dense.moment(k), rel=1e-8)
        assert np.max(np.abs(dense.occupancy() - sp.occupancy())) < 1e-8

    def test_exit_vector_and_matvec_agree(self):
        params = heterogeneous_params(5)
        dense = build_phase_type(params, backend="dense").operator
        sp = build_phase_type(params, backend="sparse").operator
        assert np.allclose(dense.exit_vector(), sp.exit_vector())
        v = np.linspace(-1.0, 1.0, dense.order)
        assert np.allclose(dense.matvec(v), sp.matvec(v))
        assert np.allclose(dense.rmatvec(v), sp.rmatvec(v))
        assert np.allclose(sp.to_dense(), dense.to_dense())

    def test_solve_roundtrip(self):
        params = heterogeneous_params(6)
        for backend in ("dense", "sparse"):
            op = build_phase_type(params, backend=backend).operator
            b = np.sin(np.arange(op.order))
            assert np.allclose(op.matvec(op.solve(b)), b, atol=1e-9)
            assert np.allclose(op.rmatvec(op.solve_transpose(b)), b, atol=1e-9)


class TestKrylovSolves:
    """Above SPARSE_LU_LIMIT the solves go iterative — check they stay exact."""

    def test_large_system_solve_matches_lumped_truth(self):
        # n=12 symmetric: 4096 transient states (> SPARSE_LU_LIMIT), and the
        # lumped 14-state chain provides an independent exact value.
        params = SystemParameters.symmetric(12, 1.0, 2.0 * 12 / (12 * 11))
        ph = build_phase_type(params, backend="sparse")
        assert ph.order == 4096
        truth = SimplifiedChain(n=12, mu=1.0,
                                lam=2.0 * 12 / (12 * 11)).mean_interval()
        assert ph.mean() == pytest.approx(truth, rel=1e-8)

    def test_large_system_occupancy_sums_to_mean(self):
        params = SystemParameters.symmetric(12, 1.0, 1.0 / 11)
        ph = build_phase_type(params, backend="sparse")
        tau = ph.occupancy()
        assert float(tau.sum()) == pytest.approx(ph.mean(), rel=1e-8)
        assert np.all(tau > -1e-12)


class TestSingularDiagnosability:
    """A malformed (non-absorbing) generator warns instead of silently
    returning inf/nan from the cached LU paths."""

    def _singular_ph(self, to_sparse):
        # State 1 never exits: T is singular but passes PH validation.
        T = np.array([[-1.0, 1.0], [0.0, 0.0]])
        if to_sparse:
            T = sparse.csr_matrix(T)
        return PhaseType(alpha=np.array([1.0, 0.0]), T=T)

    def test_dense_moment_warns(self):
        ph = self._singular_ph(False)
        with pytest.warns(RuntimeWarning, match="singular"):
            ph.mean()

    def test_sparse_moment_warns(self):
        ph = self._singular_ph(True)
        with pytest.warns(RuntimeWarning, match="singular"):
            ph.mean()


class TestSparsePhaseTypeBehaviour:
    def test_validation_rejects_bad_sparse_T(self):
        with pytest.raises(ValueError):
            PhaseType(alpha=np.array([1.0]),
                      T=sparse.csr_matrix(np.array([[1.0]])))
        with pytest.raises(ValueError):
            PhaseType(alpha=np.array([1.0, 0.0]),
                      T=sparse.csr_matrix(np.array([[-1.0, -0.5],
                                                    [0.0, -1.0]])))
        with pytest.raises(ValueError):
            PhaseType(alpha=np.array([1.0, 0.0]),
                      T=sparse.csr_matrix(np.array([[-1.0, 2.0],
                                                    [0.0, -1.0]])))

    def test_sparse_sampling_matches_analytic_mean(self, rng):
        params = heterogeneous_params(3)
        ph = build_phase_type(params, backend="sparse")
        samples = ph.sample(3000, rng)
        assert samples.mean() == pytest.approx(ph.mean(), rel=0.1)

    def test_negative_times_rejected(self):
        ph = build_phase_type(heterogeneous_params(3), backend="sparse")
        with pytest.raises(ValueError):
            ph.pdf([-0.5])


class TestVectorizedStateSpace:
    def test_intermediate_masks_exclude_full(self):
        space = AsyncStateSpace(4)
        masks = space.intermediate_masks()
        assert masks.shape == (15,)
        assert masks.max() == space.full_mask - 1

    def test_indices_of_masks_matches_scalar(self):
        space = AsyncStateSpace(4)
        masks = np.arange(space.full_mask + 1)
        vectorized = space.indices_of_masks(masks)
        scalar = [space.index_of_mask(int(m)) for m in masks]
        assert list(vectorized) == scalar
        with pytest.raises(ValueError):
            space.indices_of_masks(np.array([space.full_mask + 1]))

    def test_popcounts_matches_scalar(self):
        space = AsyncStateSpace(5)
        masks = np.arange(space.full_mask + 1)
        assert list(space.popcounts(masks)) == \
            [space.count_ones(int(m)) for m in masks]


class TestLargeNFacade:
    """End-to-end: the façade handles n=11 heterogeneous (dense is 2049²)."""

    def test_full_pipeline_at_n11(self):
        params = heterogeneous_params(11)
        model = RecoveryLineIntervalModel(params)
        assert model.analytic_backend == "sparse"
        mean = model.mean_interval()
        assert np.isfinite(mean) and mean > 0.0
        q = model.completion_probabilities()
        assert q.sum() == pytest.approx(1.0, abs=1e-6)
        counts = model.expected_rp_counts(counting="all")
        assert np.allclose(counts, params.mu * mean, rtol=1e-6)
