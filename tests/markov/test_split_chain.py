"""Unit tests for the split discrete chain Y_d and the E[L_i] computations."""

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.markov.generator import build_phase_type
from repro.markov.split_chain import (
    SplitChainYd,
    SplitTag,
    absorption_by_process,
    expected_rp_counts,
)


class TestSplitConstruction:
    def test_state_count(self, params_case1):
        chain = SplitChainYd(params_case1, target=0)
        # Entry + absorbing + 7 intermediate masks, of which those with bit_0 set
        # (0b001, 0b011, 0b101 -> 3 masks) are split in two.
        assert chain.n_states == 2 + 7 + 3

    def test_rows_are_stochastic(self, params_case2):
        chain = SplitChainYd(params_case2, target=1)
        P = chain.dtmc.P
        assert np.allclose(P.sum(axis=1), 1.0)
        assert np.all(P >= 0.0)

    def test_entry_has_no_self_loop(self, params_case1):
        chain = SplitChainYd(params_case1, target=0)
        assert chain.dtmc.P[chain.entry_index, chain.entry_index] == pytest.approx(0.0)

    def test_target_out_of_range(self, params_case1):
        with pytest.raises(ValueError):
            SplitChainYd(params_case1, target=7)

    def test_expected_visits_labels(self, params_case1):
        visits = SplitChainYd(params_case1, target=0).expected_visits()
        assert any(label.endswith("'") for label in visits)
        assert "S_r" in visits


class TestCountingConventions:
    def test_all_counting_is_wald_identity(self, params_case2):
        model = build_phase_type(params_case2)
        counts = expected_rp_counts(params_case2, counting="all")
        assert np.allclose(counts, params_case2.mu * model.mean())

    def test_interior_counting_subtracts_completion_probability(self, params_case1):
        all_counts = expected_rp_counts(params_case1, counting="all")
        interior = expected_rp_counts(params_case1, counting="interior")
        q = absorption_by_process(params_case1)
        assert np.allclose(all_counts - interior, q)

    def test_completion_probabilities_sum_to_one(self, params_case1, params_case2):
        assert absorption_by_process(params_case1).sum() == pytest.approx(1.0)
        assert absorption_by_process(params_case2).sum() == pytest.approx(1.0)

    def test_split_chain_matches_direct_interior_computation(self, params_case2):
        direct = expected_rp_counts(params_case2, counting="interior")
        explicit = np.array([SplitChainYd(params_case2, target=i).expected_rp_count()
                             for i in range(3)])
        assert np.allclose(direct, explicit, rtol=1e-9)

    def test_unknown_counting_rejected(self, params_case1):
        with pytest.raises(ValueError):
            expected_rp_counts(params_case1, counting="bogus")


class TestPaperShapeProperties:
    def test_counts_proportional_to_mu(self, params_case2):
        counts = expected_rp_counts(params_case2, counting="all")
        ratios = counts / params_case2.mu
        assert np.allclose(ratios, ratios[0])

    def test_balanced_mu_minimises_total_count(self):
        # Table 1 observation: the minimum of E[sum L] occurs for balanced mu.
        lam = (1.0, 1.0, 1.0)
        balanced = SystemParameters.three_process((1.0, 1.0, 1.0), lam)
        skewed = SystemParameters.three_process((1.5, 1.0, 0.5), lam)
        total_balanced = expected_rp_counts(balanced, "all").sum()
        total_skewed = expected_rp_counts(skewed, "all").sum()
        assert total_balanced < total_skewed

    def test_higher_mu_process_completes_lines_more_often(self, params_case2):
        q = absorption_by_process(params_case2)
        assert q[0] > q[1] > q[2]
