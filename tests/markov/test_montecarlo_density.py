"""Unit tests for the model-level Monte Carlo sampler and the density helpers."""

import numpy as np
import pytest

from repro.core.intervals import extract_intervals
from repro.core.parameters import SystemParameters
from repro.markov.density import density_curve, density_mass_check, interval_cdf, interval_density
from repro.markov.montecarlo import ModelSimulator, SimulatedIntervals
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel


class TestModelSimulator:
    def test_reproducible_with_seed(self, params_case1):
        a = ModelSimulator(params_case1, seed=5).sample_intervals(200)
        b = ModelSimulator(params_case1, seed=5).sample_intervals(200)
        assert np.allclose(a.lengths, b.lengths)
        assert np.array_equal(a.rp_counts, b.rp_counts)

    def test_different_seeds_differ(self, params_case1):
        a = ModelSimulator(params_case1, seed=1).sample_intervals(50)
        b = ModelSimulator(params_case1, seed=2).sample_intervals(50)
        assert not np.allclose(a.lengths, b.lengths)

    def test_mean_interval_converges_to_analytic(self, params_case1):
        analytic = RecoveryLineIntervalModel(params_case1).mean_interval()
        sim = ModelSimulator(params_case1, seed=3).sample_intervals(8000)
        assert sim.mean_interval() == pytest.approx(analytic, rel=0.06)

    def test_rp_counts_converge_to_wald(self, params_case2):
        sim = ModelSimulator(params_case2, seed=4).sample_intervals(8000)
        expected = params_case2.mu * RecoveryLineIntervalModel(
            params_case2, prefer_simplified=False).mean_interval()
        assert np.allclose(sim.mean_rp_counts("all"), expected, rtol=0.08)

    def test_completing_process_consistency(self, params_case1):
        sim = ModelSimulator(params_case1, seed=6).sample_intervals(300)
        # Every interval's completing process must have at least one RP recorded.
        rows = np.arange(sim.n_samples)
        assert np.all(sim.rp_counts[rows, sim.completing_process] >= 1)
        assert sim.completion_frequencies().sum() == pytest.approx(1.0)

    def test_interior_counts_are_all_minus_one_for_completer(self, params_case1):
        sim = ModelSimulator(params_case1, seed=7).sample_intervals(100)
        diff = sim.mean_rp_counts("all").sum() - sim.mean_rp_counts("interior").sum()
        assert diff == pytest.approx(1.0)

    def test_requires_positive_intervals(self, params_case1):
        with pytest.raises(ValueError):
            ModelSimulator(params_case1, seed=1).sample_intervals(0)

    def test_rejects_all_zero_rates(self):
        params = SystemParameters(mu=[1.0], lam=np.zeros((1, 1)))
        # A single process with mu > 0 is fine (every RP forms a line) …
        sim = ModelSimulator(params, seed=1).sample_intervals(100)
        assert sim.mean_interval() == pytest.approx(1.0, rel=0.3)

    def test_generate_history_respects_duration(self, params_case1):
        history = ModelSimulator(params_case1, seed=8).generate_history(25.0)
        assert history.end_time <= 25.0
        assert history.checkpoint_count(0) > 1

    def test_history_intervals_match_analytic_mean(self, params_case1):
        history = ModelSimulator(params_case1, seed=9).generate_history(800.0)
        observations = extract_intervals(history)
        mean = np.mean([obs.length for obs in observations])
        analytic = RecoveryLineIntervalModel(params_case1).mean_interval()
        assert mean == pytest.approx(analytic, rel=0.15)


class TestSimulatedIntervalsContainer:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedIntervals(lengths=np.ones(3), rp_counts=np.ones((2, 2)),
                               completing_process=np.zeros(3, dtype=int))

    def test_stderr_positive(self, params_case1):
        sim = ModelSimulator(params_case1, seed=10).sample_intervals(50)
        assert sim.interval_stderr() > 0.0


class TestDensityHelpers:
    def test_density_and_cdf_are_consistent(self, params_case1):
        t = np.linspace(0.0, 5.0, 501)
        pdf = np.asarray(interval_density(params_case1, t))
        cdf = np.asarray(interval_cdf(params_case1, t))
        numeric_cdf = np.concatenate(([0.0], np.cumsum(0.5 * (pdf[1:] + pdf[:-1])
                                                       * np.diff(t))))
        assert np.allclose(cdf - cdf[0], numeric_cdf, atol=5e-3)

    def test_density_curve_shape(self, params_case1):
        t, f = density_curve(params_case1, t_max=2.0, n_points=41)
        assert t.shape == f.shape == (41,)
        assert f[0] == pytest.approx(params_case1.total_rp_rate)  # f(0) = sum mu
        assert np.all(f >= 0.0)

    def test_density_mass_close_to_one(self, params_case1):
        assert density_mass_check(params_case1, t_max=60.0) == pytest.approx(1.0, abs=0.02)

    def test_density_curve_validates_arguments(self, params_case1):
        with pytest.raises(ValueError):
            density_curve(params_case1, t_max=-1.0)
        with pytest.raises(ValueError):
            density_curve(params_case1, n_points=1)
