"""Unit tests for repro.markov.state_space."""

import pytest

from repro.markov.state_space import AsyncStateSpace


class TestSizes:
    @pytest.mark.parametrize("n,expected", [(1, 3), (2, 5), (3, 9), (4, 17)])
    def test_state_count_is_2_pow_n_plus_1(self, n, expected):
        assert AsyncStateSpace(n).n_states == expected

    def test_transient_count(self):
        assert AsyncStateSpace(3).n_transient == 8

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            AsyncStateSpace(0)
        with pytest.raises(ValueError):
            AsyncStateSpace(25)


class TestEncoding:
    def test_paper_numbering(self):
        space = AsyncStateSpace(3)
        # index = sum x_i 2^{i-1} + 1 in the paper; mask + 1 here.
        assert space.index_of_mask(0b000) == 1
        assert space.index_of_mask(0b101) == 6
        assert space.index_of_mask(space.full_mask) == space.absorbing_index

    def test_roundtrip_intermediate(self):
        space = AsyncStateSpace(4)
        for index in space.intermediate_indices():
            assert space.index_of_mask(space.mask_of_index(index)) == index

    def test_entry_and_absorbing_map_to_full_mask(self):
        space = AsyncStateSpace(3)
        assert space.mask_of_index(space.entry_index) == space.full_mask
        assert space.mask_of_index(space.absorbing_index) == space.full_mask

    def test_mask_out_of_range(self):
        with pytest.raises(ValueError):
            AsyncStateSpace(2).index_of_mask(8)

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            AsyncStateSpace(2).mask_of_index(9)


class TestBits:
    def test_bit_manipulation(self):
        space = AsyncStateSpace(3)
        mask = 0b010
        assert space.bit(mask, 1) == 1 and space.bit(mask, 0) == 0
        assert space.set_bit(mask, 0) == 0b011
        assert space.clear_bit(mask, 1) == 0b000

    def test_ones_and_zeros_partition(self):
        space = AsyncStateSpace(4)
        mask = 0b1010
        assert space.ones(mask) == [1, 3]
        assert space.zeros(mask) == [0, 2]
        assert space.count_ones(mask) == 2

    def test_process_range_checked(self):
        with pytest.raises(ValueError):
            AsyncStateSpace(2).bit(0, 5)


class TestLabels:
    def test_special_labels(self):
        space = AsyncStateSpace(2)
        assert space.label(space.entry_index) == "S_r"
        assert space.label(space.absorbing_index) == "S_{r+1}"

    def test_tuple_of_index(self):
        space = AsyncStateSpace(3)
        assert space.tuple_of_index(space.index_of_mask(0b101)) == (1, 0, 1)

    def test_classifiers(self):
        space = AsyncStateSpace(2)
        assert space.is_entry(0) and not space.is_intermediate(0)
        assert space.is_absorbing(space.absorbing_index)
        assert space.is_intermediate(1)
