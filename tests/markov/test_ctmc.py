"""Unit tests for repro.markov.ctmc (phase-type distributions)."""

import numpy as np
import pytest

from repro.markov.ctmc import PhaseType, transient_distribution
from repro.markov.generator import build_generator


@pytest.fixture
def exponential_ph():
    """PH representation of Exp(2)."""
    return PhaseType(alpha=np.array([1.0]), T=np.array([[-2.0]]))


@pytest.fixture
def erlang2_ph():
    """Erlang(2, rate 3): two exponential phases in series."""
    return PhaseType(alpha=np.array([1.0, 0.0]),
                     T=np.array([[-3.0, 3.0], [0.0, -3.0]]))


class TestValidation:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            PhaseType(alpha=np.array([0.5]), T=np.array([[-1.0]]))

    def test_rejects_positive_diagonal(self):
        with pytest.raises(ValueError):
            PhaseType(alpha=np.array([1.0]), T=np.array([[1.0]]))

    def test_rejects_negative_offdiagonal(self):
        with pytest.raises(ValueError):
            PhaseType(alpha=np.array([1.0, 0.0]),
                      T=np.array([[-1.0, -0.5], [0.0, -1.0]]))

    def test_rejects_mismatched_sizes(self):
        with pytest.raises(ValueError):
            PhaseType(alpha=np.array([1.0]), T=np.eye(2) * -1)


class TestExponentialCase:
    def test_pdf_matches_closed_form(self, exponential_ph):
        t = np.array([0.0, 0.5, 1.0])
        assert np.allclose(exponential_ph.pdf(t), 2.0 * np.exp(-2.0 * t))

    def test_cdf_and_sf(self, exponential_ph):
        assert exponential_ph.cdf(1.0) == pytest.approx(1.0 - np.exp(-2.0))
        assert exponential_ph.sf(1.0) == pytest.approx(np.exp(-2.0))

    def test_moments(self, exponential_ph):
        assert exponential_ph.mean() == pytest.approx(0.5)
        assert exponential_ph.variance() == pytest.approx(0.25)
        assert exponential_ph.moment(3) == pytest.approx(6.0 / 8.0)

    def test_scalar_input_returns_scalar(self, exponential_ph):
        assert isinstance(exponential_ph.pdf(0.3), float)
        assert isinstance(exponential_ph.cdf(0.3), float)


class TestErlangCase:
    def test_mean_and_variance(self, erlang2_ph):
        assert erlang2_ph.mean() == pytest.approx(2.0 / 3.0)
        assert erlang2_ph.variance() == pytest.approx(2.0 / 9.0)

    def test_pdf_matches_closed_form(self, erlang2_ph):
        t = np.linspace(0.1, 2.0, 7)
        expected = 9.0 * t * np.exp(-3.0 * t)
        assert np.allclose(erlang2_ph.pdf(t), expected)

    def test_exit_vector(self, erlang2_ph):
        assert np.allclose(erlang2_ph.exit_vector, [0.0, 3.0])

    def test_uniform_grid_propagation_matches_pointwise(self, erlang2_ph):
        uniform = np.linspace(0.0, 2.0, 21)
        irregular = uniform[[0, 3, 7, 20]]
        dense = np.asarray(erlang2_ph.pdf(uniform))
        sparse = np.asarray(erlang2_ph.pdf(irregular))
        assert np.allclose(dense[[0, 3, 7, 20]], sparse)

    def test_density_integrates_to_one(self, erlang2_ph):
        t = np.linspace(0.0, 20.0, 4001)
        mass = np.trapezoid(erlang2_ph.pdf(t), t)
        assert mass == pytest.approx(1.0, abs=1e-4)

    def test_negative_times_rejected(self, erlang2_ph):
        with pytest.raises(ValueError):
            erlang2_ph.pdf([-0.1, 0.5])

    def test_sampling_mean_close_to_analytic(self, erlang2_ph, rng):
        samples = erlang2_ph.sample(4000, rng)
        assert samples.mean() == pytest.approx(erlang2_ph.mean(), rel=0.05)
        assert np.all(samples > 0.0)


class TestSurvivalTailPrecision:
    """ISSUE satellite: sf computed directly, not as the cancelling 1 - cdf."""

    def test_deep_tail_matches_closed_form(self, erlang2_ph):
        # Erlang(2, 3): S(t) = (1 + 3t) e^{-3t}.  At t = 40 that is ~9e-51,
        # far below the double-precision epsilon of 1, so any 1 - cdf
        # formulation returns exactly 0 (or a negative round-off).
        for t in (20.0, 40.0, 80.0):
            exact = (1.0 + 3.0 * t) * np.exp(-3.0 * t)
            value = erlang2_ph.sf(t)
            assert value > 0.0
            assert value == pytest.approx(exact, rel=1e-9)

    def test_deep_tail_exponential(self, exponential_ph):
        assert exponential_ph.sf(200.0) == pytest.approx(np.exp(-400.0),
                                                         rel=1e-9)

    def test_one_minus_cdf_would_cancel(self, erlang2_ph):
        # The regression this satellite fixes: the subtraction form is 0 here.
        t = 40.0
        assert 1.0 - erlang2_ph.cdf(t) == 0.0
        assert erlang2_ph.sf(t) > 1e-60

    def test_vector_and_scalar_forms_agree(self, erlang2_ph):
        times = np.array([0.0, 1.0, 30.0, 60.0])
        vector = np.asarray(erlang2_ph.sf(times))
        for t, value in zip(times, vector):
            assert erlang2_ph.sf(float(t)) == pytest.approx(value, rel=1e-12,
                                                            abs=0.0)


def random_phase_type(rng: np.random.Generator, order: int) -> PhaseType:
    """A random well-posed PH(alpha, T) with guaranteed absorption."""
    T = rng.uniform(0.0, 1.0, size=(order, order))
    np.fill_diagonal(T, 0.0)
    exit_rates = rng.uniform(0.05, 1.0, size=order)
    np.fill_diagonal(T, -(T.sum(axis=1) + exit_rates))
    alpha = rng.dirichlet(np.ones(order))
    return PhaseType(alpha=alpha, T=T)


class TestExpmStatesPaths:
    """ISSUE satellite: the uniform-grid cached-step fast path, the per-time
    path and the Chapman-Kolmogorov ODE all agree on random chains."""

    @pytest.mark.parametrize("seed,order", [(0, 2), (1, 4), (2, 7), (3, 12)])
    def test_uniform_fast_path_matches_per_time_path(self, seed, order):
        ph = random_phase_type(np.random.default_rng(seed), order)
        uniform = np.linspace(0.0, 5.0, 21)       # triggers the cached step
        # Evaluating one time at a time forces the per-time expm path.
        pointwise = np.array([ph.pdf(float(t)) for t in uniform])
        assert np.allclose(ph.pdf(uniform), pointwise, rtol=1e-9, atol=1e-12)
        pointwise_sf = np.array([ph.sf(float(t)) for t in uniform])
        assert np.allclose(ph.sf(uniform), pointwise_sf, rtol=1e-9,
                           atol=1e-12)

    @pytest.mark.parametrize("seed,order", [(4, 3), (5, 8)])
    def test_shuffled_grid_matches_sorted_grid(self, seed, order):
        ph = random_phase_type(np.random.default_rng(seed), order)
        rng = np.random.default_rng(seed + 100)
        times = np.sort(rng.uniform(0.0, 4.0, size=9))
        shuffled = times[rng.permutation(times.size)]
        sorted_pdf = np.asarray(ph.pdf(times))
        shuffled_pdf = np.asarray(ph.pdf(shuffled))
        order_back = np.argsort(shuffled, kind="stable")
        assert np.allclose(shuffled_pdf[order_back], sorted_pdf, rtol=1e-9)

    @pytest.mark.parametrize("seed,order", [(6, 3), (7, 6), (8, 10)])
    def test_both_paths_match_ode_cross_check(self, seed, order):
        ph = random_phase_type(np.random.default_rng(seed), order)
        # Embed T in a full generator with an explicit absorbing state.
        H = np.zeros((order + 1, order + 1))
        H[:order, :order] = ph.T
        H[:order, order] = ph.exit_vector
        pi0 = np.concatenate([ph.alpha, [0.0]])
        times = np.linspace(0.0, 3.0, 7)
        pi = transient_distribution(H, pi0, times)
        assert np.allclose(pi[:, order], ph.cdf(times), atol=1e-7)
        assert np.allclose(pi[:, :order].sum(axis=1), ph.sf(times), atol=1e-7)

    def test_sparse_backend_agrees_with_ode(self):
        from scipy import sparse as sp

        ph_dense = random_phase_type(np.random.default_rng(9), 6)
        ph_sparse = PhaseType(alpha=ph_dense.alpha,
                              T=sp.csr_matrix(ph_dense.T))
        H = np.zeros((7, 7))
        H[:6, :6] = np.asarray(ph_dense.T)
        H[:6, 6] = ph_dense.exit_vector
        pi0 = np.concatenate([ph_dense.alpha, [0.0]])
        times = np.linspace(0.0, 2.0, 9)
        pi = transient_distribution(sp.csr_matrix(H), pi0, times)
        assert np.allclose(pi[:, 6], ph_sparse.cdf(times), atol=1e-7)


class TestChapmanKolmogorov:
    def test_ode_matches_phase_type_cdf(self, params_case1):
        from repro.markov.generator import build_phase_type

        H, space = build_generator(params_case1)
        ph = build_phase_type(params_case1)
        pi0 = np.zeros(space.n_states)
        pi0[space.entry_index] = 1.0
        times = np.array([0.0, 0.5, 1.0, 2.0, 4.0])
        pi = transient_distribution(H, pi0, times)
        assert np.allclose(pi[:, space.absorbing_index], ph.cdf(times), atol=1e-6)
        # Probabilities remain a distribution at all times.
        assert np.allclose(pi.sum(axis=1), 1.0, atol=1e-6)

    def test_times_must_be_sorted(self, params_case1):
        H, space = build_generator(params_case1)
        pi0 = np.zeros(space.n_states)
        pi0[0] = 1.0
        with pytest.raises(ValueError):
            transient_distribution(H, pi0, [1.0, 0.5])
