"""Unit tests for repro.markov.ctmc (phase-type distributions)."""

import numpy as np
import pytest

from repro.markov.ctmc import PhaseType, transient_distribution
from repro.markov.generator import build_generator


@pytest.fixture
def exponential_ph():
    """PH representation of Exp(2)."""
    return PhaseType(alpha=np.array([1.0]), T=np.array([[-2.0]]))


@pytest.fixture
def erlang2_ph():
    """Erlang(2, rate 3): two exponential phases in series."""
    return PhaseType(alpha=np.array([1.0, 0.0]),
                     T=np.array([[-3.0, 3.0], [0.0, -3.0]]))


class TestValidation:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            PhaseType(alpha=np.array([0.5]), T=np.array([[-1.0]]))

    def test_rejects_positive_diagonal(self):
        with pytest.raises(ValueError):
            PhaseType(alpha=np.array([1.0]), T=np.array([[1.0]]))

    def test_rejects_negative_offdiagonal(self):
        with pytest.raises(ValueError):
            PhaseType(alpha=np.array([1.0, 0.0]),
                      T=np.array([[-1.0, -0.5], [0.0, -1.0]]))

    def test_rejects_mismatched_sizes(self):
        with pytest.raises(ValueError):
            PhaseType(alpha=np.array([1.0]), T=np.eye(2) * -1)


class TestExponentialCase:
    def test_pdf_matches_closed_form(self, exponential_ph):
        t = np.array([0.0, 0.5, 1.0])
        assert np.allclose(exponential_ph.pdf(t), 2.0 * np.exp(-2.0 * t))

    def test_cdf_and_sf(self, exponential_ph):
        assert exponential_ph.cdf(1.0) == pytest.approx(1.0 - np.exp(-2.0))
        assert exponential_ph.sf(1.0) == pytest.approx(np.exp(-2.0))

    def test_moments(self, exponential_ph):
        assert exponential_ph.mean() == pytest.approx(0.5)
        assert exponential_ph.variance() == pytest.approx(0.25)
        assert exponential_ph.moment(3) == pytest.approx(6.0 / 8.0)

    def test_scalar_input_returns_scalar(self, exponential_ph):
        assert isinstance(exponential_ph.pdf(0.3), float)
        assert isinstance(exponential_ph.cdf(0.3), float)


class TestErlangCase:
    def test_mean_and_variance(self, erlang2_ph):
        assert erlang2_ph.mean() == pytest.approx(2.0 / 3.0)
        assert erlang2_ph.variance() == pytest.approx(2.0 / 9.0)

    def test_pdf_matches_closed_form(self, erlang2_ph):
        t = np.linspace(0.1, 2.0, 7)
        expected = 9.0 * t * np.exp(-3.0 * t)
        assert np.allclose(erlang2_ph.pdf(t), expected)

    def test_exit_vector(self, erlang2_ph):
        assert np.allclose(erlang2_ph.exit_vector, [0.0, 3.0])

    def test_uniform_grid_propagation_matches_pointwise(self, erlang2_ph):
        uniform = np.linspace(0.0, 2.0, 21)
        irregular = uniform[[0, 3, 7, 20]]
        dense = np.asarray(erlang2_ph.pdf(uniform))
        sparse = np.asarray(erlang2_ph.pdf(irregular))
        assert np.allclose(dense[[0, 3, 7, 20]], sparse)

    def test_density_integrates_to_one(self, erlang2_ph):
        t = np.linspace(0.0, 20.0, 4001)
        mass = np.trapezoid(erlang2_ph.pdf(t), t)
        assert mass == pytest.approx(1.0, abs=1e-4)

    def test_negative_times_rejected(self, erlang2_ph):
        with pytest.raises(ValueError):
            erlang2_ph.pdf([-0.1, 0.5])

    def test_sampling_mean_close_to_analytic(self, erlang2_ph, rng):
        samples = erlang2_ph.sample(4000, rng)
        assert samples.mean() == pytest.approx(erlang2_ph.mean(), rel=0.05)
        assert np.all(samples > 0.0)


class TestChapmanKolmogorov:
    def test_ode_matches_phase_type_cdf(self, params_case1):
        from repro.markov.generator import build_phase_type

        H, space = build_generator(params_case1)
        ph = build_phase_type(params_case1)
        pi0 = np.zeros(space.n_states)
        pi0[space.entry_index] = 1.0
        times = np.array([0.0, 0.5, 1.0, 2.0, 4.0])
        pi = transient_distribution(H, pi0, times)
        assert np.allclose(pi[:, space.absorbing_index], ph.cdf(times), atol=1e-6)
        # Probabilities remain a distribution at all times.
        assert np.allclose(pi.sum(axis=1), 1.0, atol=1e-6)

    def test_times_must_be_sorted(self, params_case1):
        H, space = build_generator(params_case1)
        pi0 = np.zeros(space.n_states)
        pi0[0] = 1.0
        with pytest.raises(ValueError):
            transient_distribution(H, pi0, [1.0, 0.5])
