"""Unit tests for the lumped symmetric chain (Figure 3)."""

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.markov.generator import build_generator, build_phase_type
from repro.markov.simplified import SimplifiedChain, simplified_mean_interval
from repro.util.linalg import is_generator_matrix


class TestStructure:
    def test_state_count_is_n_plus_2(self):
        assert SimplifiedChain(5, 1.0, 1.0).n_states == 7

    def test_generator_is_valid(self):
        H = SimplifiedChain(4, 1.0, 0.5).generator()
        assert is_generator_matrix(H)

    def test_rule_r4_entry_rate(self):
        chain = SimplifiedChain(3, 2.0, 1.0)
        H = chain.generator()
        assert H[chain.entry_index, chain.absorbing_index] == pytest.approx(6.0)

    def test_rule_r1_prime(self):
        chain = SimplifiedChain(4, 1.5, 1.0)
        H = chain.generator()
        # From S_1 (one process clean), three processes can checkpoint.
        assert H[chain.index_of_u(1), chain.index_of_u(2)] == pytest.approx(3 * 1.5)

    def test_rule_r2_prime_and_r3_prime(self):
        chain = SimplifiedChain(4, 1.0, 2.0)
        H = chain.generator()
        src = chain.index_of_u(3)
        assert H[src, chain.index_of_u(1)] == pytest.approx(3 * 2 / 2.0 * 2.0)  # R2'
        assert H[src, chain.index_of_u(2)] == pytest.approx(3 * 1 * 2.0)        # R3'

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimplifiedChain(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            SimplifiedChain(3, -1.0, 1.0)
        with pytest.raises(ValueError):
            SimplifiedChain(3, 1.0, -0.5)


class TestAgreementWithFullChain:
    @pytest.mark.parametrize("n,mu,lam", [(2, 1.0, 1.0), (3, 1.0, 1.0),
                                          (3, 0.5, 2.0), (4, 2.0, 0.25),
                                          (5, 1.0, 0.5)])
    def test_mean_interval_matches_full_chain(self, n, mu, lam):
        lumped = SimplifiedChain(n, mu, lam).mean_interval()
        full = build_phase_type(SystemParameters.symmetric(n, mu, lam)).mean()
        assert lumped == pytest.approx(full, rel=1e-9)

    def test_density_matches_full_chain(self):
        chain = SimplifiedChain(3, 1.0, 1.0)
        full = build_phase_type(SystemParameters.symmetric(3, 1.0, 1.0))
        t = np.linspace(0.0, 3.0, 13)
        assert np.allclose(chain.phase_type().pdf(t), full.pdf(t), atol=1e-10)

    def test_lumping_map_covers_all_states(self):
        chain = SimplifiedChain(3, 1.0, 1.0)
        mapping, sizes = chain.lumping_map()
        assert mapping.shape == (9,)
        # One entry state, one absorbing, C(3,u) intermediates per u.
        assert sizes[chain.entry_index] == 1
        assert sizes[chain.absorbing_index] == 1  # the all-ones pattern *is* S_{r+1}
        assert sizes[chain.index_of_u(1)] == 3


class TestScaling:
    def test_known_case1_value(self):
        assert simplified_mean_interval(3, 1.0, 1.0) == pytest.approx(2.5)

    def test_time_rescaling(self):
        # Scaling all rates by c scales E[X] by 1/c.
        base = simplified_mean_interval(4, 1.0, 1.0)
        scaled = simplified_mean_interval(4, 2.0, 2.0)
        assert scaled == pytest.approx(base / 2.0)

    def test_mean_grows_with_interaction_rate(self):
        low = simplified_mean_interval(4, 1.0, 0.1)
        high = simplified_mean_interval(4, 1.0, 2.0)
        assert high > low

    def test_mean_grows_rapidly_with_n_at_fixed_rates(self):
        values = [simplified_mean_interval(n, 1.0, 1.0) for n in (2, 3, 4, 5, 6)]
        ratios = [b / a for a, b in zip(values, values[1:])]
        assert all(r > 1.5 for r in ratios)   # "increases drastically" (Figure 5)
        assert ratios[-1] > ratios[0]

    def test_interval_std_positive(self):
        assert SimplifiedChain(3, 1.0, 1.0).interval_std() > 0.0
