"""Unit tests for the high-level RecoveryLineIntervalModel façade."""

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel


class TestChainSelection:
    def test_symmetric_system_uses_lumped_chain(self):
        params = SystemParameters.symmetric(6, 1.0, 1.0)
        model = RecoveryLineIntervalModel(params)
        assert model.uses_simplified_chain
        assert model.n_states == 8    # n + 2

    def test_asymmetric_system_uses_full_chain(self, params_case2):
        model = RecoveryLineIntervalModel(params_case2)
        assert not model.uses_simplified_chain
        assert model.n_states == 9    # 2^3 + 1

    def test_prefer_simplified_false_forces_full_chain(self, params_case1):
        model = RecoveryLineIntervalModel(params_case1, prefer_simplified=False)
        assert not model.uses_simplified_chain

    def test_both_chains_agree(self, params_case1):
        lumped = RecoveryLineIntervalModel(params_case1, prefer_simplified=True)
        full = RecoveryLineIntervalModel(params_case1, prefer_simplified=False)
        assert lumped.mean_interval() == pytest.approx(full.mean_interval())
        t = np.linspace(0.0, 2.0, 9)
        assert np.allclose(lumped.pdf(t), full.pdf(t), atol=1e-10)


class TestQuantities:
    def test_case1_reference_values(self, params_case1):
        model = RecoveryLineIntervalModel(params_case1)
        assert model.mean_interval() == pytest.approx(2.5)
        assert model.expected_total_rp_count("all") == pytest.approx(7.5)
        assert model.interval_variance() > 0.0
        assert model.interval_moment(1) == pytest.approx(model.mean_interval())

    def test_cdf_and_survival_complement(self, params_case1):
        model = RecoveryLineIntervalModel(params_case1)
        t = np.array([0.5, 1.0, 2.0])
        assert np.allclose(np.asarray(model.cdf(t)) + np.asarray(model.survival(t)),
                           1.0)

    def test_completion_probabilities_sum_to_one(self, params_case2):
        model = RecoveryLineIntervalModel(params_case2)
        assert model.completion_probabilities().sum() == pytest.approx(1.0)

    def test_table1_row_fields(self, params_case2):
        row = RecoveryLineIntervalModel(params_case2).table1_row()
        assert set(row) == {"E[X]", "E[L1]", "E[L2]", "E[L3]", "E[sum L]"}
        assert row["E[sum L]"] == pytest.approx(row["E[L1]"] + row["E[L2]"]
                                                + row["E[L3]"])

    def test_generator_property_matches_full_chain_shape(self, params_case1):
        model = RecoveryLineIntervalModel(params_case1)
        assert model.generator.shape == (9, 9)


class TestSimulationBridge:
    def test_simulate_returns_requested_samples(self, params_case1):
        samples = RecoveryLineIntervalModel(params_case1).simulate(64, seed=1)
        assert samples.n_samples == 64

    def test_validation_report_contents(self, params_case1):
        report = RecoveryLineIntervalModel(params_case1).validation_report(
            n_intervals=2000, seed=3)
        assert report["relative_error_X"] < 0.1
        assert np.all(report["relative_error_L"] < 0.15)
        assert report["counting"] == "all"
