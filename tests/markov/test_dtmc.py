"""Unit tests for repro.markov.dtmc."""

import numpy as np
import pytest

from repro.markov.dtmc import AbsorbingDTMC


@pytest.fixture
def gambler():
    """Gambler's ruin on {0,1,2,3} with p=0.5; states 0 and 3 absorbing."""
    P = np.array([
        [1.0, 0.0, 0.0, 0.0],
        [0.5, 0.0, 0.5, 0.0],
        [0.0, 0.5, 0.0, 0.5],
        [0.0, 0.0, 0.0, 1.0],
    ])
    return AbsorbingDTMC(P=P, absorbing=(0, 3))


class TestValidation:
    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError):
            AbsorbingDTMC(P=np.array([[0.5, 0.4], [0.0, 1.0]]), absorbing=(1,))

    def test_rejects_non_absorbing_marked_absorbing(self):
        P = np.array([[0.5, 0.5], [0.0, 1.0]])
        with pytest.raises(ValueError):
            AbsorbingDTMC(P=P, absorbing=(0,))

    def test_rejects_out_of_range_absorbing(self):
        with pytest.raises(ValueError):
            AbsorbingDTMC(P=np.eye(2), absorbing=(5,))

    def test_rejects_negative_probabilities(self):
        P = np.array([[1.2, -0.2], [0.0, 1.0]])
        with pytest.raises(ValueError):
            AbsorbingDTMC(P=P, absorbing=(1,))


class TestGamblersRuin:
    def test_transient_identification(self, gambler):
        assert gambler.transient == (1, 2)

    def test_fundamental_matrix(self, gambler):
        N = gambler.fundamental()
        expected = np.array([[4.0 / 3.0, 2.0 / 3.0], [2.0 / 3.0, 4.0 / 3.0]])
        assert np.allclose(N, expected)

    def test_expected_steps_to_absorption(self, gambler):
        assert gambler.expected_steps_to_absorption(1) == pytest.approx(2.0)
        assert gambler.expected_steps_to_absorption(2) == pytest.approx(2.0)

    def test_absorption_distribution(self, gambler):
        probs = gambler.absorption_distribution(1)
        assert np.allclose(probs, [2.0 / 3.0, 1.0 / 3.0])
        assert probs.sum() == pytest.approx(1.0)

    def test_expected_visits_by_state_keys(self, gambler):
        visits = gambler.expected_visits_by_state(1)
        assert set(visits) == {1, 2}
        assert visits[1] == pytest.approx(4.0 / 3.0)

    def test_expected_visits_rejects_absorbing_start(self, gambler):
        with pytest.raises(ValueError):
            gambler.expected_visits(0)

    def test_simulation_reaches_absorption(self, gambler, rng):
        path = gambler.simulate_to_absorption(1, rng)
        assert path[0] == 1
        assert path[-1] in (0, 3)

    def test_simulated_absorption_frequencies(self, gambler, rng):
        hits = [gambler.simulate_to_absorption(1, rng)[-1] for _ in range(800)]
        frequency_of_ruin = hits.count(0) / len(hits)
        assert frequency_of_ruin == pytest.approx(2.0 / 3.0, abs=0.06)
