"""Unit tests for repro.markov.generator (rules R1–R4)."""

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.markov.generator import build_generator, build_phase_type
from repro.util.linalg import is_generator_matrix


@pytest.fixture
def case1_generator(params_case1):
    return build_generator(params_case1)


class TestStructure:
    def test_dimensions(self, case1_generator):
        H, space = case1_generator
        assert H.shape == (9, 9)
        assert space.n_states == 9

    def test_is_valid_generator(self, case1_generator):
        H, _space = case1_generator
        assert is_generator_matrix(H)

    def test_absorbing_row_is_zero(self, case1_generator):
        H, space = case1_generator
        assert np.allclose(H[space.absorbing_index], 0.0)

    def test_off_diagonal_nonnegative(self, case1_generator):
        H, _ = case1_generator
        off = H - np.diag(np.diagonal(H))
        assert np.all(off >= 0.0)


class TestRules:
    def test_r4_entry_to_absorbing_rate_is_total_mu(self, params_case2):
        H, space = build_generator(params_case2)
        assert H[space.entry_index, space.absorbing_index] == pytest.approx(3.0)

    def test_r2_from_entry_clears_the_interacting_pair(self, params_case1):
        H, space = build_generator(params_case1)
        # Interaction between P1 and P2 from the entry state leads to (0,0,1).
        dest = space.index_of_mask(0b100)
        assert H[space.entry_index, dest] == pytest.approx(1.0)

    def test_entry_exit_rate_is_uniformization_constant(self, params_case1):
        H, space = build_generator(params_case1)
        assert -H[space.entry_index, space.entry_index] == pytest.approx(
            params_case1.uniformization_constant())

    def test_r1_recovery_point_sets_bit(self, params_case2):
        H, space = build_generator(params_case2)
        src = space.index_of_mask(0b000)
        dest = space.index_of_mask(0b010)   # P2 takes an RP
        assert H[src, dest] == pytest.approx(params_case2.mu[1])

    def test_r1_completing_rp_targets_absorbing(self, params_case2):
        H, space = build_generator(params_case2)
        src = space.index_of_mask(0b011)    # only P3's bit is 0
        assert H[src, space.absorbing_index] == pytest.approx(params_case2.mu[2])

    def test_r3_one_on_zero_interaction_clears_one_bit(self, params_case1):
        H, space = build_generator(params_case1)
        src = space.index_of_mask(0b001)    # P1 last did an RP, P2/P3 interactions
        dest = space.index_of_mask(0b000)
        # P1 can interact with P2 or P3 (both zero bits): rate lambda_12+lambda_13.
        assert H[src, dest] == pytest.approx(2.0)

    def test_r2_between_intermediate_ones(self, params_case1):
        H, space = build_generator(params_case1)
        src = space.index_of_mask(0b011)    # P1 and P2 bits set
        dest = space.index_of_mask(0b000)
        assert H[src, dest] == pytest.approx(params_case1.pair_rate(0, 1))

    def test_zero_rate_pairs_produce_no_transition(self):
        params = SystemParameters.from_pair_rates([1.0, 1.0, 1.0], [(0, 1, 1.0)])
        H, space = build_generator(params)
        src = space.index_of_mask(0b101)    # P1 and P3 bits set, pair rate 0
        dest = space.index_of_mask(0b000)
        assert H[src, dest] == 0.0


class TestPhaseType:
    def test_starts_in_entry_state(self, params_case1):
        ph = build_phase_type(params_case1)
        assert ph.alpha[0] == 1.0 and ph.alpha.sum() == pytest.approx(1.0)
        assert ph.order == 8

    def test_case1_mean_matches_hand_computation(self, params_case1):
        # Solving the symmetric three-process chain by hand gives E[X] = 2.5.
        assert build_phase_type(params_case1).mean() == pytest.approx(2.5)

    def test_two_process_closed_form(self):
        # For n=2: E[X] = (1/(2mu)) * (1 + lam/mu * (E[from S0]) ...) — use the
        # known closed form via first-step analysis: with mu=1, lam=1,
        # E[X] = 1/2 + (1/2)*E[S0'] path; hand computation gives 1.0.
        params = SystemParameters.symmetric(2, mu=1.0, lam=1.0)
        assert build_phase_type(params).mean() == pytest.approx(1.0)

    def test_no_interactions_reduces_to_single_exponential(self):
        # With lam = 0 the next recovery line forms at the first RP anywhere:
        # X ~ Exp(sum mu).
        params = SystemParameters(mu=[1.0, 2.0], lam=np.zeros((2, 2)))
        ph = build_phase_type(params)
        assert ph.mean() == pytest.approx(1.0 / 3.0)
        assert ph.variance() == pytest.approx(1.0 / 9.0)
