"""The structure-cached generator assembly: bit-identity and memoization.

The cache's contract (module docstring of :mod:`repro.markov.structure_cache`)
is that both refill paths reproduce the legacy loop builders *exactly* — not
approximately — so a rates-only sweep can reuse one structure without any
cell's numbers moving.  These tests pin that contract and the memo behaviour
(hits on rate changes, misses on zero-pattern changes).
"""

import numpy as np
import pytest

from repro.core.parameters import SystemParameters
from repro.markov.generator import (build_generator, build_generator_sparse,
                                    build_phase_type)
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel
from repro.markov.structure_cache import (cache_info, clear_structure_cache,
                                          structure_for)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_structure_cache()
    yield
    clear_structure_cache()


def heterogeneous_params(n=5, scale=1.0):
    """A dense, fully asymmetric parameterisation (every pair interacts)."""
    mu = [1.0 + 0.25 * i for i in range(n)]
    pairs = [(i, j, scale * (0.1 + 0.05 * (i + j)))
             for i in range(n) for j in range(i + 1, n)]
    return SystemParameters.from_pair_rates(mu, pairs)


def sparse_pattern_params(n=5, scale=1.0):
    """A parameterisation with zeroed pairs (ring topology)."""
    mu = [1.0 + 0.2 * i for i in range(n)]
    pairs = [(i, (i + 1) % n, scale * (0.2 + 0.1 * i)) for i in range(n)]
    return SystemParameters.from_pair_rates(mu, pairs)


class TestBitIdentity:
    """Cached refills equal the loop builders bit for bit."""

    @pytest.mark.parametrize("params_factory",
                             [heterogeneous_params, sparse_pattern_params])
    def test_refill_sparse_equals_loop_builder(self, params_factory):
        params = params_factory()
        expected, _space = build_generator_sparse(params)
        got = structure_for(params).refill_sparse(params)
        assert got.shape == expected.shape
        assert np.array_equal(got.indptr, expected.indptr)
        assert np.array_equal(got.indices, expected.indices)
        # Bit-for-bit, not allclose: the refill must be the same floats.
        assert np.array_equal(got.data, expected.data)

    @pytest.mark.parametrize("params_factory",
                             [heterogeneous_params, sparse_pattern_params])
    def test_fill_dense_equals_loop_builder(self, params_factory):
        params = params_factory()
        expected, _space = build_generator(params)
        structure = structure_for(params)
        assert np.array_equal(structure.fill_dense(params), expected)
        assert np.array_equal(structure.fill_dense_shared(params), expected)

    def test_refill_after_rate_change_matches_fresh_build(self):
        """The second fill of a reused structure is exact, not stale."""
        structure = structure_for(heterogeneous_params(scale=1.0))
        rescaled = heterogeneous_params(scale=1.7)
        assert structure_for(rescaled) is structure
        expected, _space = build_generator_sparse(rescaled)
        got = structure.refill_sparse(rescaled)
        assert np.array_equal(got.data, expected.data)

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_build_phase_type_cache_on_equals_cache_off(self, backend):
        params = heterogeneous_params()
        on = build_phase_type(params, backend=backend, structure_cache=True)
        off = build_phase_type(params, backend=backend, structure_cache=False)
        assert np.array_equal(on.alpha, off.alpha)
        T_on = on.T.toarray() if hasattr(on.T, "toarray") else np.asarray(on.T)
        T_off = off.T.toarray() if hasattr(off.T, "toarray") \
            else np.asarray(off.T)
        assert np.array_equal(T_on, T_off)

    def test_interval_model_cache_on_equals_cache_off_over_sweep(self):
        """A rates-only mini sweep: every cell's moments are bit-identical."""
        for scale in (0.6, 1.0, 1.4, 2.2):
            params = heterogeneous_params(scale=scale)
            on = RecoveryLineIntervalModel(params, structure_cache=True)
            off = RecoveryLineIntervalModel(params, structure_cache=False)
            assert on.mean_interval().hex() == off.mean_interval().hex()
            assert on.interval_variance().hex() == \
                off.interval_variance().hex()


class TestMemoization:
    def test_rates_only_sweep_hits(self):
        structure_for(heterogeneous_params(scale=1.0))
        assert cache_info() == {"hits": 0, "misses": 1, "size": 1}
        for scale in (1.3, 1.6, 1.9):
            structure_for(heterogeneous_params(scale=scale))
        assert cache_info() == {"hits": 3, "misses": 1, "size": 1}

    def test_zero_pattern_change_misses(self):
        structure_for(heterogeneous_params())
        structure_for(sparse_pattern_params())     # different zero pattern
        assert cache_info()["misses"] == 2
        # ... and each pattern then hits its own entry.
        structure_for(sparse_pattern_params(scale=1.5))
        assert cache_info()["hits"] == 1

    def test_different_n_misses(self):
        structure_for(heterogeneous_params(n=4))
        structure_for(heterogeneous_params(n=5))
        assert cache_info() == {"hits": 0, "misses": 2, "size": 2}

    def test_size_mismatch_rejected(self):
        structure = structure_for(heterogeneous_params(n=4))
        with pytest.raises(ValueError, match="structure is for n=4"):
            structure.fill_values(heterogeneous_params(n=5))
