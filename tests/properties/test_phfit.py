"""Property tests of the phase-type fitting subsystem.

Across random Weibull/lognormal targets the fitters must always hand back a
*valid* phase-type distribution (sub-stochastic generator, non-negative
initial vector), the two-moment family must reproduce the target mean and
variance to numerical tolerance, the grid family must keep the mean exact by
construction, and the best-of-budget rule must make the CDF-distance
diagnostic monotone non-increasing in the phase budget.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.phfit import (
    FITTABLE_LAWS,
    MAX_FIT_ORDER,
    TargetLaw,
    fit_phase_type,
    select_order,
)

laws = st.sampled_from(FITTABLE_LAWS)
# Shapes stay in the range the conformance suite calibrates (heavy tails
# beyond σ≈1.5 need orders past MAX_FIT_ORDER to fit well, but validity and
# moment matching must hold there regardless).
shapes = st.floats(min_value=0.5, max_value=2.5, allow_nan=False)
means = st.floats(min_value=0.2, max_value=5.0, allow_nan=False)
budgets = st.one_of(st.none(), st.integers(min_value=1, max_value=24))


def target_laws():
    return st.builds(TargetLaw, laws, shapes, means)


def dense(matrix):
    return np.asarray(matrix.toarray() if hasattr(matrix, "toarray")
                      else matrix, dtype=float)


@settings(max_examples=80, deadline=None)
@given(target_laws(), budgets)
def test_fit_is_a_valid_phase_type(law, order):
    fit = fit_phase_type(law, order)
    ph = fit.phase_type
    alpha = np.asarray(ph.alpha, dtype=float)
    T = dense(ph.T)
    assert np.all(alpha >= 0.0)
    assert np.isclose(alpha.sum(), 1.0, atol=1e-12)
    off_diag = T - np.diag(np.diag(T))
    assert np.all(off_diag >= 0.0)
    assert np.all(np.diag(T) < 0.0)
    # Sub-stochastic generator: row sums are -exit rates, never positive.
    exit_rates = -T.sum(axis=1)
    assert np.all(exit_rates >= -1e-9)
    if order is not None:
        assert ph.order <= max(order, ph.order)  # budget may fall back
        assert fit.order == ph.order


@settings(max_examples=80, deadline=None)
@given(target_laws())
def test_two_moment_fit_reproduces_mean_and_variance(law):
    fit = fit_phase_type(law)
    assert fit.mean_rel_error < 1e-8
    assert fit.variance_rel_error < 1e-6
    ph = fit.phase_type
    assert np.isclose(ph.mean(), law.mean, rtol=1e-8)
    assert np.isclose(ph.variance(), law.variance(), rtol=1e-6)


@settings(max_examples=60, deadline=None)
@given(target_laws(), st.integers(min_value=2, max_value=24))
def test_explicit_budget_keeps_the_mean_exact(law, order):
    # Both candidate families match the mean by construction (exact-mean
    # rescale for the grid, closed forms for the two-moment fits).
    fit = fit_phase_type(law, order)
    assert fit.mean_rel_error < 1e-8


@settings(max_examples=40, deadline=None)
@given(target_laws())
def test_diagnostic_is_monotone_in_the_budget(law):
    distances = [fit_phase_type(law, order).cdf_distance
                 for order in (2, 4, 8, 16)]
    minimal = fit_phase_type(law).cdf_distance
    # Best-of-budget: once the two-moment fit is inside the budget, larger
    # budgets can only improve on it.
    k = fit_phase_type(law).order
    for order, distance in zip((2, 4, 8, 16), distances):
        if order >= k:
            assert distance <= minimal + 1e-12


@settings(max_examples=30, deadline=None)
@given(target_laws())
def test_select_order_never_loses_to_the_minimal_fit(law):
    best = select_order(law, tol=0.02, max_order=32)
    assert best.cdf_distance <= fit_phase_type(law).cdf_distance + 1e-12
    assert best.order <= 32


def test_order_bounds_are_enforced():
    law = TargetLaw("weibull", 2.0)
    with pytest.raises(ValueError):
        fit_phase_type(law, 0)
    with pytest.raises(ValueError):
        fit_phase_type(law, MAX_FIT_ORDER + 1)
    with pytest.raises(ValueError):
        TargetLaw("gamma", 1.0)
    with pytest.raises(ValueError):
        TargetLaw("weibull", -1.0)


def test_order_one_is_the_exponential_baseline():
    fit = fit_phase_type(TargetLaw("lognormal", 0.8, mean=2.0), 1)
    assert fit.family == "exponential"
    assert fit.order == 1
    assert np.isclose(fit.phase_type.mean(), 2.0, rtol=1e-9)
