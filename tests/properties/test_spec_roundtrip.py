"""Property tests: StudySpec/SystemSpec serialisation and identity.

Hypothesis-generated specs across every system kind (including the strategy
kind) must round-trip *exactly* through their dict/JSON forms, and
``canonical_key`` must be insensitive to the ordering of the dicts a payload
arrives in — equivalent payloads collapse to one cell identity, inequivalent
ones never do.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    KNOWN_METRICS,
    RECOVERY_SCHEMES,
    STRATEGY_METRICS,
    StudySpec,
    SystemSpec,
)

# ---------------------------------------------------------------- strategies
# Rates et al. stay strictly positive and away from denormals; abs() folds
# -0.0 (json preserves the sign bit, but -0.0 == 0.0 would make two equal
# specs hash to different canonical keys).
finite_rate = st.floats(min_value=0.05, max_value=8.0, allow_nan=False)
small_count = st.integers(min_value=2, max_value=6)
probability = st.floats(min_value=0.0, max_value=0.2,
                        allow_nan=False).map(abs)

# The failure-law axis: None means the exponential default (axis omitted
# from the payload entirely — the canonical form must not change).
failure_laws = st.one_of(
    st.none(),
    st.tuples(st.sampled_from(["weibull", "lognormal"]),
              st.floats(min_value=0.4, max_value=3.0, allow_nan=False)))


def fault_models():
    """Optional correlated-fault blocks over processes {0, 1} (always valid
    for the n >= 2 systems generated here)."""
    return st.one_of(
        st.none(),
        st.builds(
            lambda members, rate, p, depth: {
                "groups": [sorted(members)],
                "common_mode_rate": rate,
                "propagation_probability": p,
                "cascade_depth": depth},
            st.sets(st.integers(min_value=0, max_value=1), min_size=1,
                    max_size=2),
            st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
            probability,
            st.integers(min_value=0, max_value=3)))


def with_failure_law(args, law):
    if law is not None:
        args = dict(args, failure_law=law[0], failure_shape=law[1])
    return args


def symmetric_systems():
    return st.builds(
        lambda n, mu, lam, law: SystemSpec(
            "symmetric", with_failure_law({"n": n, "mu": mu, "lam": lam},
                                          law)),
        small_count, finite_rate, finite_rate, failure_laws)


def three_process_systems():
    triple = st.tuples(finite_rate, finite_rate, finite_rate)
    return st.builds(lambda mu, lam: SystemSpec("three_process",
                                                {"mu": mu,
                                                 "lam_12_23_31": lam}),
                     triple, triple)


def case_systems():
    return st.one_of(
        st.integers(min_value=1, max_value=5).map(SystemSpec.table1_case),
        st.integers(min_value=1, max_value=3).map(SystemSpec.figure6_case))


def heterogeneous_systems():
    return st.builds(
        lambda n, mu, g, lam, loc: SystemSpec.heterogeneous(
            n, mu_base=mu, mu_gradient=g, lam_base=lam, locality=loc),
        small_count, finite_rate,
        st.floats(min_value=0.5, max_value=2.0, allow_nan=False),
        finite_rate,
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False).map(abs))


def strategy_systems():
    def build(scheme, n, mu, spread, lam, work, err, law, fault_model):
        args = with_failure_law(
            {"mu": mu, "mu_spread": spread, "lam": lam, "work": work,
             "error_rate": err}, law)
        if fault_model is not None:
            args["fault_model"] = fault_model
        return SystemSpec.strategy(scheme, n, **args)

    return st.builds(
        build,
        st.sampled_from(RECOVERY_SCHEMES), small_count, finite_rate,
        st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
        finite_rate,
        st.floats(min_value=5.0, max_value=100.0, allow_nan=False),
        probability, failure_laws, fault_models())


def system_specs():
    return st.one_of(symmetric_systems(), three_process_systems(),
                     case_systems(), heterogeneous_systems(),
                     strategy_systems())


SCALAR_INTERVAL_METRICS = tuple(m for m in KNOWN_METRICS
                                if m not in ("pdf", "cdf", "sf"))


@st.composite
def study_specs(draw):
    system = draw(system_specs())
    vocabulary = STRATEGY_METRICS if system.kind == "strategy" \
        else SCALAR_INTERVAL_METRICS
    metrics = tuple(draw(st.lists(st.sampled_from(vocabulary), min_size=1,
                                  max_size=3, unique=True)))
    times = ()
    if system.kind != "strategy" and draw(st.booleans()):
        metrics = metrics + ("cdf",)
        times = (1.0, 2.5)
    reps = draw(st.one_of(st.none(),
                          st.integers(min_value=1, max_value=50_000)))
    seed = draw(st.one_of(st.none(),
                          st.integers(min_value=0, max_value=2**32 - 1)))
    sweep = {}
    if draw(st.booleans()):
        sweep["reps"] = tuple(draw(st.lists(
            st.integers(min_value=1, max_value=1000), min_size=1, max_size=3,
            unique=True)))
    return StudySpec(system=system, metrics=metrics, times=times, reps=reps,
                     seed=seed, sweep=sweep)


def reorder(value, reverse):
    """Recursively rebuild dicts with key order flipped (payload-equivalent)."""
    if isinstance(value, dict):
        items = sorted(value.items(), reverse=reverse)
        return {k: reorder(v, reverse) for k, v in items}
    if isinstance(value, list):
        return [reorder(v, reverse) for v in value]
    return value


# ------------------------------------------------------------------ round trip
@settings(max_examples=60, deadline=None)
@given(system_specs())
def test_system_spec_round_trips_exactly(system):
    assert SystemSpec.from_dict(system.to_dict()) == system
    via_json = SystemSpec.from_dict(json.loads(json.dumps(system.to_dict())))
    assert via_json == system
    assert via_json.to_dict() == system.to_dict()


@settings(max_examples=60, deadline=None)
@given(study_specs())
def test_study_spec_round_trips_exactly(spec):
    assert StudySpec.from_dict(spec.to_dict()) == spec
    via_json = StudySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert via_json == spec
    assert via_json.to_dict() == spec.to_dict()
    assert hash(via_json) == hash(spec)


# ------------------------------------------------------------------ identity
@settings(max_examples=60, deadline=None)
@given(study_specs(), st.sampled_from(["auto", "analytic"]))
def test_canonical_key_is_order_insensitive(spec, method):
    if method == "analytic" and spec.system.kind == "strategy":
        method = "auto"   # analytic serves only the closed-form subset
    if method == "analytic" and spec.system.failure_law != "exponential" \
            and set(spec.metrics) & {"rp_counts",
                                     "completion_probabilities"}:
        method = "auto"   # the PH approximation cannot serve these
    # A sweep spec has no single cell identity; its expanded cells do.
    baseline = [cell.canonical_key(method) for cell in spec.cells()]
    for reverse in (False, True):
        shuffled = StudySpec.from_dict(reorder(spec.to_dict(), reverse))
        assert shuffled == spec
        # equivalent payloads enumerate identical cells with identical keys
        assert [c.to_dict() for c in shuffled.cells()] == \
            [c.to_dict() for c in spec.cells()]
        assert [c.canonical_key(method) for c in shuffled.cells()] == baseline


@settings(max_examples=60, deadline=None)
@given(study_specs())
def test_canonical_key_separates_distinct_systems(spec):
    payload = spec.to_dict()
    system = dict(payload["system"])
    # Perturb one numeric system argument: a different system must never
    # collide with the original cell.
    numeric = [k for k, v in system.items()
               if isinstance(v, float) and k != "kind"]
    if not numeric:
        numeric = [k for k, v in system.items()
                   if isinstance(v, int) and k != "kind"]
    if not numeric:
        return   # case systems perturb via the int branch above
    key = sorted(numeric)[0]
    system[key] = system[key] + 1
    try:
        other = StudySpec.from_dict({**payload, "system": system})
    except ValueError:
        return   # perturbation left the kind's valid domain
    ours = [cell.canonical_key("auto") for cell in spec.cells()]
    theirs = [cell.canonical_key("auto") for cell in other.cells()]
    assert not set(ours) & set(theirs)


def test_integer_float_equivalence_shares_one_key():
    a = StudySpec(system=SystemSpec.symmetric(4, 1, 1), metrics=("mean",))
    b = StudySpec(system=SystemSpec.symmetric(4, 1.0, 1.0),
                  metrics=("mean",))
    assert a == b
    assert a.canonical_key() == b.canonical_key()


def test_strategy_kind_key_depends_on_scheme():
    keys = {StudySpec(system=SystemSpec.strategy(s, 3, mu=1.0, lam=1.0,
                                                 work=10.0),
                      metrics=("makespan",), seed=1).canonical_key("strategy")
            for s in RECOVERY_SCHEMES}
    assert len(keys) == len(RECOVERY_SCHEMES)


# ------------------------------------------------- failure-law / fault-model
def test_exponential_default_is_omitted_from_the_canonical_form():
    """An explicit exponential law is the default: payload, equality and
    store identity all collapse onto the law-free spec (existing store keys
    survive the schema extension)."""
    plain = SystemSpec.symmetric(3, 1.0, 0.5)
    explicit = SystemSpec("symmetric", {"n": 3, "mu": 1.0, "lam": 0.5,
                                        "failure_law": "exponential"})
    assert explicit == plain
    assert explicit.to_dict() == plain.to_dict()
    assert "failure_law" not in plain.to_dict()
    a = StudySpec(system=plain, metrics=("mean",), seed=1)
    b = StudySpec(system=explicit, metrics=("mean",), seed=1)
    assert a.canonical_key("mc") == b.canonical_key("mc")


def test_failure_law_axis_separates_cell_identities():
    def key(**extra):
        system = SystemSpec("symmetric",
                            {"n": 3, "mu": 1.0, "lam": 0.5, **extra})
        return StudySpec(system=system, metrics=("mean",),
                         seed=1).canonical_key("mc")

    keys = {key(),
            key(failure_law="weibull", failure_shape=2.0),
            key(failure_law="weibull", failure_shape=0.7),
            key(failure_law="lognormal", failure_shape=2.0)}
    assert len(keys) == 4


def test_fault_model_separates_cell_identities():
    def key(fault_model=None):
        args = {"mu": 1.0, "lam": 1.0, "work": 10.0, "error_rate": 0.05}
        if fault_model is not None:
            args["fault_model"] = fault_model
        system = SystemSpec.strategy("asynchronous", 3, **args)
        return StudySpec(system=system, metrics=("makespan",),
                         seed=1).canonical_key("strategy")

    base = {"groups": [[0, 1]], "common_mode_rate": 0.1}
    keys = {key(),
            key(base),
            key({**base, "common_mode_rate": 0.2}),
            key({**base, "propagation_probability": 0.5,
                 "cascade_depth": 2})}
    assert len(keys) == 4


def test_fault_model_canonicalises_group_order():
    a = SystemSpec.strategy("asynchronous", 4, mu=1.0, lam=1.0, work=10.0,
                            fault_model={"groups": [[2, 0], [3, 1]],
                                         "common_mode_rate": 0.1})
    b = SystemSpec.strategy("asynchronous", 4, mu=1.0, lam=1.0, work=10.0,
                            fault_model={"groups": [[1, 3], [0, 2]],
                                         "common_mode_rate": 0.1})
    assert a == b
    assert a.to_dict() == b.to_dict()


def test_ph_order_tunes_identity_but_not_execution_options():
    """ph_order changes the analytic answer, so it is identity-bearing —
    unlike rep_chunk/structure_cache, which tune execution only."""
    args = {"n": 3, "mu": 1.0, "lam": 0.5, "failure_law": "weibull",
            "failure_shape": 2.0}
    plain = StudySpec(system=SystemSpec("symmetric", args),
                      metrics=("mean",), seed=1)
    ordered = StudySpec(system=SystemSpec("symmetric", args),
                        metrics=("mean",), seed=1,
                        options={"ph_order": 16})
    assert plain.canonical_key("analytic") != \
        ordered.canonical_key("analytic")
