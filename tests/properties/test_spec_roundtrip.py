"""Property tests: StudySpec/SystemSpec serialisation and identity.

Hypothesis-generated specs across every system kind (including the strategy
kind) must round-trip *exactly* through their dict/JSON forms, and
``canonical_key`` must be insensitive to the ordering of the dicts a payload
arrives in — equivalent payloads collapse to one cell identity, inequivalent
ones never do.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    KNOWN_METRICS,
    RECOVERY_SCHEMES,
    STRATEGY_METRICS,
    StudySpec,
    SystemSpec,
)

# ---------------------------------------------------------------- strategies
# Rates et al. stay strictly positive and away from denormals; abs() folds
# -0.0 (json preserves the sign bit, but -0.0 == 0.0 would make two equal
# specs hash to different canonical keys).
finite_rate = st.floats(min_value=0.05, max_value=8.0, allow_nan=False)
small_count = st.integers(min_value=2, max_value=6)
probability = st.floats(min_value=0.0, max_value=0.2,
                        allow_nan=False).map(abs)


def symmetric_systems():
    return st.builds(SystemSpec.symmetric, n=small_count, mu=finite_rate,
                     lam=finite_rate)


def three_process_systems():
    triple = st.tuples(finite_rate, finite_rate, finite_rate)
    return st.builds(lambda mu, lam: SystemSpec("three_process",
                                                {"mu": mu,
                                                 "lam_12_23_31": lam}),
                     triple, triple)


def case_systems():
    return st.one_of(
        st.integers(min_value=1, max_value=5).map(SystemSpec.table1_case),
        st.integers(min_value=1, max_value=3).map(SystemSpec.figure6_case))


def heterogeneous_systems():
    return st.builds(
        lambda n, mu, g, lam, loc: SystemSpec.heterogeneous(
            n, mu_base=mu, mu_gradient=g, lam_base=lam, locality=loc),
        small_count, finite_rate,
        st.floats(min_value=0.5, max_value=2.0, allow_nan=False),
        finite_rate,
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False).map(abs))


def strategy_systems():
    return st.builds(
        lambda scheme, n, mu, spread, lam, work, err: SystemSpec.strategy(
            scheme, n, mu=mu, mu_spread=spread, lam=lam, work=work,
            error_rate=err),
        st.sampled_from(RECOVERY_SCHEMES), small_count, finite_rate,
        st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
        finite_rate,
        st.floats(min_value=5.0, max_value=100.0, allow_nan=False),
        probability)


def system_specs():
    return st.one_of(symmetric_systems(), three_process_systems(),
                     case_systems(), heterogeneous_systems(),
                     strategy_systems())


SCALAR_INTERVAL_METRICS = tuple(m for m in KNOWN_METRICS
                                if m not in ("pdf", "cdf", "sf"))


@st.composite
def study_specs(draw):
    system = draw(system_specs())
    vocabulary = STRATEGY_METRICS if system.kind == "strategy" \
        else SCALAR_INTERVAL_METRICS
    metrics = tuple(draw(st.lists(st.sampled_from(vocabulary), min_size=1,
                                  max_size=3, unique=True)))
    times = ()
    if system.kind != "strategy" and draw(st.booleans()):
        metrics = metrics + ("cdf",)
        times = (1.0, 2.5)
    reps = draw(st.one_of(st.none(),
                          st.integers(min_value=1, max_value=50_000)))
    seed = draw(st.one_of(st.none(),
                          st.integers(min_value=0, max_value=2**32 - 1)))
    sweep = {}
    if draw(st.booleans()):
        sweep["reps"] = tuple(draw(st.lists(
            st.integers(min_value=1, max_value=1000), min_size=1, max_size=3,
            unique=True)))
    return StudySpec(system=system, metrics=metrics, times=times, reps=reps,
                     seed=seed, sweep=sweep)


def reorder(value, reverse):
    """Recursively rebuild dicts with key order flipped (payload-equivalent)."""
    if isinstance(value, dict):
        items = sorted(value.items(), reverse=reverse)
        return {k: reorder(v, reverse) for k, v in items}
    if isinstance(value, list):
        return [reorder(v, reverse) for v in value]
    return value


# ------------------------------------------------------------------ round trip
@settings(max_examples=60, deadline=None)
@given(system_specs())
def test_system_spec_round_trips_exactly(system):
    assert SystemSpec.from_dict(system.to_dict()) == system
    via_json = SystemSpec.from_dict(json.loads(json.dumps(system.to_dict())))
    assert via_json == system
    assert via_json.to_dict() == system.to_dict()


@settings(max_examples=60, deadline=None)
@given(study_specs())
def test_study_spec_round_trips_exactly(spec):
    assert StudySpec.from_dict(spec.to_dict()) == spec
    via_json = StudySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert via_json == spec
    assert via_json.to_dict() == spec.to_dict()
    assert hash(via_json) == hash(spec)


# ------------------------------------------------------------------ identity
@settings(max_examples=60, deadline=None)
@given(study_specs(), st.sampled_from(["auto", "analytic"]))
def test_canonical_key_is_order_insensitive(spec, method):
    if method == "analytic" and spec.system.kind == "strategy":
        method = "auto"   # analytic serves only the closed-form subset
    # A sweep spec has no single cell identity; its expanded cells do.
    baseline = [cell.canonical_key(method) for cell in spec.cells()]
    for reverse in (False, True):
        shuffled = StudySpec.from_dict(reorder(spec.to_dict(), reverse))
        assert shuffled == spec
        # equivalent payloads enumerate identical cells with identical keys
        assert [c.to_dict() for c in shuffled.cells()] == \
            [c.to_dict() for c in spec.cells()]
        assert [c.canonical_key(method) for c in shuffled.cells()] == baseline


@settings(max_examples=60, deadline=None)
@given(study_specs())
def test_canonical_key_separates_distinct_systems(spec):
    payload = spec.to_dict()
    system = dict(payload["system"])
    # Perturb one numeric system argument: a different system must never
    # collide with the original cell.
    numeric = [k for k, v in system.items()
               if isinstance(v, float) and k != "kind"]
    if not numeric:
        numeric = [k for k, v in system.items()
                   if isinstance(v, int) and k != "kind"]
    if not numeric:
        return   # case systems perturb via the int branch above
    key = sorted(numeric)[0]
    system[key] = system[key] + 1
    try:
        other = StudySpec.from_dict({**payload, "system": system})
    except ValueError:
        return   # perturbation left the kind's valid domain
    ours = [cell.canonical_key("auto") for cell in spec.cells()]
    theirs = [cell.canonical_key("auto") for cell in other.cells()]
    assert not set(ours) & set(theirs)


def test_integer_float_equivalence_shares_one_key():
    a = StudySpec(system=SystemSpec.symmetric(4, 1, 1), metrics=("mean",))
    b = StudySpec(system=SystemSpec.symmetric(4, 1.0, 1.0),
                  metrics=("mean",))
    assert a == b
    assert a.canonical_key() == b.canonical_key()


def test_strategy_kind_key_depends_on_scheme():
    keys = {StudySpec(system=SystemSpec.strategy(s, 3, mu=1.0, lam=1.0,
                                                 work=10.0),
                      metrics=("makespan",), seed=1).canonical_key("strategy")
            for s in RECOVERY_SCHEMES}
    assert len(keys) == len(RECOVERY_SCHEMES)
