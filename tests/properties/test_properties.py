"""Property-based tests (hypothesis) on the core invariants.

These cover the invariants DESIGN.md calls out: generator validity, phase-type
moment consistency, order-statistics identities, recovery-line consistency,
rollback never crossing a recovery line, and checkpoint-store conservation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.order_statistics import (
    expected_maximum_exponential,
    maximum_exponential_cdf,
)
from repro.analysis.synchronized_loss import computation_loss
from repro.core.history import HistoryDiagram
from repro.core.parameters import SystemParameters
from repro.core.recovery_line import (
    ExactRecoveryLineDetector,
    LatestRPRecoveryLineDetector,
    is_consistent_line,
)
from repro.core.rollback import propagate_rollback
from repro.markov.generator import build_generator, build_phase_type
from repro.markov.split_chain import absorption_by_process, expected_rp_counts
from repro.util.linalg import is_generator_matrix

# ---------------------------------------------------------------------- strategies

rates = st.floats(min_value=0.05, max_value=5.0, allow_nan=False,
                  allow_infinity=False)


@st.composite
def system_parameters(draw, max_n=4):
    n = draw(st.integers(min_value=2, max_value=max_n))
    mu = [draw(rates) for _ in range(n)]
    lam = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            lam[i, j] = lam[j, i] = draw(st.floats(min_value=0.0, max_value=3.0))
    return SystemParameters(mu=mu, lam=lam)


@st.composite
def random_history(draw, max_events=18):
    n = draw(st.integers(min_value=2, max_value=4))
    history = HistoryDiagram(n)
    n_events = draw(st.integers(min_value=0, max_value=max_events))
    t = 0.0
    for _ in range(n_events):
        t += draw(st.floats(min_value=0.01, max_value=1.0))
        if draw(st.booleans()):
            history.add_recovery_point(draw(st.integers(0, n - 1)), t)
        else:
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 1))
            if a != b:
                history.add_interaction(a, b, t)
    return history


# ---------------------------------------------------------------------- markov

class TestMarkovProperties:
    @given(params=system_parameters())
    @settings(max_examples=25, deadline=None)
    def test_generator_rows_sum_to_zero(self, params):
        H, space = build_generator(params)
        assert is_generator_matrix(H)
        assert np.allclose(H[space.absorbing_index], 0.0)

    @given(params=system_parameters())
    @settings(max_examples=20, deadline=None)
    def test_mean_interval_positive_and_bounded_below(self, params):
        ph = build_phase_type(params)
        mean = ph.mean()
        # The next line cannot form before the first recovery point anywhere:
        # E[X] >= 1 / (sum mu).
        assert mean >= 1.0 / params.total_rp_rate - 1e-12
        # Second moment dominates the squared mean (variance non-negative).
        assert ph.moment(2) >= mean * mean - 1e-9

    @given(params=system_parameters())
    @settings(max_examples=20, deadline=None)
    def test_wald_identity_and_completion_probabilities(self, params):
        mean = build_phase_type(params).mean()
        all_counts = expected_rp_counts(params, counting="all")
        interior = expected_rp_counts(params, counting="interior")
        q = absorption_by_process(params)
        assert np.allclose(all_counts, params.mu * mean, rtol=1e-8)
        assert q.sum() == pytest.approx(1.0)
        assert np.all(all_counts - interior >= -1e-12)

    @given(params=system_parameters(max_n=3),
           t=st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=25, deadline=None)
    def test_cdf_is_monotone_probability(self, params, t):
        ph = build_phase_type(params)
        cdf_t = ph.cdf(t)
        assert -1e-9 <= cdf_t <= 1.0 + 1e-9
        assert ph.cdf(t + 1.0) >= cdf_t - 1e-9


# ---------------------------------------------------------------------- analysis

class TestOrderStatisticsProperties:
    @given(mu=st.lists(rates, min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_maximum_dominates_every_component_mean(self, mu):
        mean_max = expected_maximum_exponential(mu)
        assert mean_max >= max(1.0 / r for r in mu) - 1e-9
        assert mean_max <= sum(1.0 / r for r in mu) + 1e-9

    @given(mu=st.lists(rates, min_size=1, max_size=5),
           t=st.floats(min_value=0.0, max_value=20.0))
    @settings(max_examples=40, deadline=None)
    def test_cdf_in_unit_interval_and_monotone(self, mu, t):
        value = maximum_exponential_cdf(mu, t)
        later = maximum_exponential_cdf(mu, t + 0.5)
        assert 0.0 <= value <= 1.0
        assert later >= value - 1e-12

    @given(mu=st.lists(rates, min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_synchronized_loss_nonnegative_and_subadditive(self, mu):
        loss = computation_loss(mu)
        assert loss >= -1e-9
        # Total loss is at most (n-1) times the mean waiting of the slowest.
        assert loss <= (len(mu)) * expected_maximum_exponential(mu) + 1e-9


# ---------------------------------------------------------------------- histories

class TestHistoryProperties:
    @given(history=random_history())
    @settings(max_examples=30, deadline=None)
    def test_detected_lines_are_consistent_and_ordered(self, history):
        lines = ExactRecoveryLineDetector().find_lines(history)
        times = [line.formation_time for line in lines]
        assert times == sorted(times)
        for line in lines:
            assert is_consistent_line(history, dict(line.points))

    @given(history=random_history())
    @settings(max_examples=30, deadline=None)
    def test_latest_rp_detector_never_finds_more_lines_than_exact(self, history):
        exact = ExactRecoveryLineDetector().find_lines(history)
        latest = LatestRPRecoveryLineDetector().find_lines(history)
        assert len(latest) <= len(exact)

    @given(history=random_history(), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_rollback_restart_is_consistent_and_behind_failure(self, history, data):
        failed = data.draw(st.integers(0, history.n_processes - 1))
        failure_time = history.end_time + 0.5
        result = propagate_rollback(history, failed, failure_time)
        # Restart points never lie after the failure and form a consistent cut.
        for rp in result.restart_points.values():
            assert rp.time <= failure_time
        assert is_consistent_line(history, dict(result.restart_points))
        assert result.max_distance <= failure_time + 1e-9

    @given(history=random_history())
    @settings(max_examples=20, deadline=None)
    def test_intervals_sum_to_span_of_lines(self, history):
        detector = LatestRPRecoveryLineDetector()
        lines = detector.find_lines(history)
        intervals = detector.intervals(history)
        if intervals:
            total = sum(intervals)
            assert total == pytest.approx(lines[-1].formation_time
                                          - lines[0].formation_time)
