"""Unit tests for the scenario registry."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.runner import (
    DuplicateScenarioError,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    load_builtin_scenarios,
    register_scenario,
    scenario,
)
from repro.runner.registry import unregister_scenario

#: Every experiment module's entry point must be reachable through the registry.
BUILTIN_SCENARIOS = {
    "table1", "figure5", "figure6", "sync_loss", "sync_loss_validation",
    "prp_costs", "validation", "detector_ablation", "solver_ablation",
    "strategy_comparison",
}


def _dummy(ctx):
    return ExperimentResult(name="dummy", paper_reference="-", columns=[])


class TestRegistry:
    def test_builtin_scenarios_all_registered(self):
        load_builtin_scenarios()
        names = {spec.name for spec in list_scenarios()}
        assert BUILTIN_SCENARIOS <= names

    def test_register_and_get(self):
        try:
            spec = register_scenario(ScenarioSpec(name="_tmp_reg", func=_dummy))
            assert get_scenario("_tmp_reg") is spec
        finally:
            unregister_scenario("_tmp_reg")

    def test_duplicate_name_rejected(self):
        try:
            register_scenario(ScenarioSpec(name="_tmp_dup", func=_dummy))
            with pytest.raises(DuplicateScenarioError):
                register_scenario(ScenarioSpec(name="_tmp_dup",
                                               func=lambda ctx: None))
        finally:
            unregister_scenario("_tmp_dup")

    def test_reregistering_same_function_is_noop(self):
        try:
            first = register_scenario(ScenarioSpec(name="_tmp_same", func=_dummy))
            second = register_scenario(ScenarioSpec(name="_tmp_same", func=_dummy))
            assert second is first
        finally:
            unregister_scenario("_tmp_same")

    def test_unknown_scenario_names_known_ones(self):
        load_builtin_scenarios()
        with pytest.raises(KeyError, match="table1"):
            get_scenario("_no_such_scenario")

    def test_decorator_registers_with_doc_description(self):
        try:
            @scenario("_tmp_deco", paper_reference="Table 0", default_reps=7)
            def my_scenario(ctx):
                """First line becomes the description.

                Not this one.
                """

            spec = get_scenario("_tmp_deco")
            assert spec.func is my_scenario
            assert spec.description == "First line becomes the description."
            assert spec.paper_reference == "Table 0"
            assert spec.default_reps == 7
            assert spec.uses_replications
        finally:
            unregister_scenario("_tmp_deco")

    def test_listing_is_sorted(self):
        load_builtin_scenarios()
        names = [spec.name for spec in list_scenarios()]
        assert names == sorted(names)
