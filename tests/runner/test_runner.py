"""Runner determinism, backends, sharding and the ``python -m repro`` CLI."""

import json

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.runner import (
    DEFAULT_SHARD_SIZE,
    ExecutionContext,
    ExperimentRunner,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    run_scenario,
    seed_to_int,
    shard_counts,
)


def _rows(result):
    return [(row.label, row.values) for row in result.rows]


class TestSharding:
    def test_exact_multiple(self):
        assert shard_counts(6_000, 2_000) == [2_000, 2_000, 2_000]

    def test_ragged_tail(self):
        assert shard_counts(4_500, 2_000) == [2_000, 2_000, 500]

    def test_small_budget_is_one_shard(self):
        assert shard_counts(7, 2_000) == [7]

    def test_total_preserved(self):
        assert sum(shard_counts(123_456, DEFAULT_SHARD_SIZE)) == 123_456

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            shard_counts(0)
        with pytest.raises(ValueError):
            shard_counts(10, 0)


class TestSeeds:
    def test_seed_to_int_is_deterministic(self):
        a = np.random.SeedSequence(42).spawn(3)
        b = np.random.SeedSequence(42).spawn(3)
        assert [seed_to_int(s) for s in a] == [seed_to_int(s) for s in b]
        assert len({seed_to_int(s) for s in a}) == 3

    def test_spawned_seed_stream_is_backend_independent(self):
        serial = ExecutionContext(SerialBackend(), seed=9)
        parallel = ExecutionContext(ProcessPoolBackend(workers=2), seed=9)
        a = serial.spawn_seeds(4) + [serial.spawn_seed()]
        b = parallel.spawn_seeds(4) + [parallel.spawn_seed()]
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]

    def test_reps_or(self):
        assert ExecutionContext(reps=None).reps_or(10) == 10
        assert ExecutionContext(reps=3).reps_or(10) == 3
        with pytest.raises(ValueError):
            ExecutionContext(reps=0).reps_or(10)


class TestBackends:
    def test_serial_map_preserves_order(self):
        assert SerialBackend().map(lambda x: x * x, range(5)) == [0, 1, 4, 9, 16]

    def test_process_map_preserves_order(self):
        backend = ProcessPoolBackend(workers=2)
        assert backend.map(abs, [-3, 1, -2, 0]) == [3, 1, 2, 0]

    def test_process_empty_task_list(self):
        assert ProcessPoolBackend(workers=2).map(abs, []) == []

    def test_make_backend_coercions(self):
        assert isinstance(make_backend(None), SerialBackend)
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("process", workers=2), ProcessPoolBackend)
        assert isinstance(make_backend(None, workers=2), ProcessPoolBackend)
        backend = ProcessPoolBackend(workers=3)
        assert make_backend(backend) is backend

    def test_make_backend_rejects_bad_input(self):
        with pytest.raises(ValueError):
            make_backend("threads")
        with pytest.raises(ValueError):
            make_backend("serial", workers=2)
        with pytest.raises(ValueError):
            make_backend(ProcessPoolBackend(), workers=2)
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=0)


class TestDeterminism:
    """ISSUE acceptance: serial and process-pool runs are bit-identical."""

    @pytest.mark.parametrize("name,params", [
        ("table1", {"simulate": True}),
        ("validation", {"history_duration": 200.0}),
    ])
    def test_serial_matches_process_pool(self, name, params):
        serial = run_scenario(name, seed=123, reps=2_500, **params)
        pooled = run_scenario(name, seed=123, reps=2_500, backend="process",
                              workers=3, **params)
        assert _rows(serial) == _rows(pooled)

    @pytest.mark.parametrize("name,params", [
        ("figure5_full_chain", {"n_values": (4, 6), "rho_values": (1.0,)}),
        ("heterogeneous_sweep", {"n": 6, "mu_gradients": (1.0, 2.0)}),
    ])
    def test_sparse_scenarios_serial_matches_process_pool(self, name, params):
        # ISSUE acceptance: the two new analytic scenarios are bit-identical
        # across backends (their grid cells fan out through ctx.map).
        serial = run_scenario(name, seed=123, **params)
        pooled = run_scenario(name, seed=123, backend="process", workers=2,
                              **params)
        assert _rows(serial) == _rows(pooled)

    def test_worker_count_does_not_change_results(self):
        two = run_scenario("table1", simulate=True, seed=5, reps=2_500,
                           backend="process", workers=2)
        four = run_scenario("table1", simulate=True, seed=5, reps=2_500,
                            backend="process", workers=4)
        assert _rows(two) == _rows(four)

    def test_same_seed_same_result_different_seed_differs(self):
        a = run_scenario("validation", seed=7, reps=1_000)
        b = run_scenario("validation", seed=7, reps=1_000)
        c = run_scenario("validation", seed=8, reps=1_000)
        assert _rows(a) == _rows(b)
        assert _rows(a) != _rows(c)


class TestExperimentRunner:
    def test_runner_level_defaults_and_overrides(self):
        runner = ExperimentRunner(seed=3, reps=800)
        default = runner.run("validation")
        override = runner.run("validation", reps=800, seed=3)
        assert _rows(default) == _rows(override)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            ExperimentRunner().run("_no_such_scenario")


class TestCLI:
    def test_list_names_every_builtin(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "validation", "strategy_comparison"):
            assert name in out

    def test_run_analytic_scenario(self, capsys):
        assert cli_main(["run", "figure6"]) == 0
        out = capsys.readouterr().out
        assert "figure6_interval_density" in out

    def test_run_with_reps_and_params(self, capsys):
        assert cli_main(["run", "validation", "--reps", "200",
                         "-p", "cases=(1,)", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "table1 case 1" in out and "table1 case 2" not in out

    def test_list_names_new_sparse_scenarios(self, capsys):
        # ISSUE acceptance: both large-n scenarios appear in `repro list`.
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure5_full_chain" in out
        assert "heterogeneous_sweep" in out

    def test_output_writes_json_envelope(self, capsys, tmp_path):
        # ISSUE satellite: --output persists params/seed/backend/elapsed + rows.
        path = tmp_path / "figure6.json"
        assert cli_main(["run", "figure6", "--seed", "9",
                         "-p", "sample_times=(0.0,1.0)", "-o", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"result written to {path}" in out
        with open(path, encoding="utf-8") as handle:
            envelope = json.load(handle)
        assert envelope["scenario"] == "figure6"
        assert envelope["seed"] == 9
        assert envelope["backend"] == "serial"
        assert envelope["params"]["sample_times"] == [0.0, 1.0]
        assert envelope["elapsed_seconds"] >= 0.0
        result = envelope["result"]
        assert result["name"] == "figure6_interval_density"
        assert result["columns"] and result["rows"]
        assert set(result["rows"][0]) == {"label", "values"}

    def test_unknown_scenario_exits_nonzero(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "_no_such_scenario"])

    def test_workers_require_process_backend(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "figure6", "--workers", "2"])
