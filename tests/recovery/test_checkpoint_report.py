"""Unit tests for the checkpoint store and run reports."""

import pytest

from repro.core.types import CheckpointKind, RecoveryPoint
from repro.recovery.checkpoint import CheckpointStore, SavedState
from repro.recovery.report import ProcessReport, RunReport


def _rp(process, index, time, kind=CheckpointKind.REGULAR, origin=None):
    return RecoveryPoint(time=time, process=process, index=index, kind=kind,
                         origin=origin)


class TestCheckpointStore:
    def test_initial_states_present(self):
        store = CheckpointStore(3)
        assert store.count() == 3
        for pid in range(3):
            assert store.latest_regular(pid).kind is CheckpointKind.INITIAL

    def test_save_and_lookup(self):
        store = CheckpointStore(2)
        rp = _rp(0, 1, 2.0)
        saved = store.save(rp, work_done=1.5, contaminated=False)
        assert store.lookup(rp) is saved
        assert saved.work_done == 1.5

    def test_lookup_missing_raises(self):
        store = CheckpointStore(1)
        with pytest.raises(KeyError):
            store.lookup(_rp(0, 5, 1.0))

    def test_latest_regular_ignores_pseudo(self):
        store = CheckpointStore(2)
        store.save(_rp(0, 1, 1.0), work_done=1.0)
        store.save(_rp(0, 2, 2.0, kind=CheckpointKind.PSEUDO, origin=(1, 1)),
                   work_done=2.0)
        assert store.latest_regular(0).index == 1
        assert store.latest_regular(0, before=0.5).kind is CheckpointKind.INITIAL

    def test_pseudo_for_origin(self):
        store = CheckpointStore(2)
        store.save(_rp(1, 1, 1.0, kind=CheckpointKind.PSEUDO, origin=(0, 3)),
                   work_done=0.7)
        assert store.pseudo_for_origin(1, (0, 3)).work_done == 0.7
        assert store.pseudo_for_origin(1, (0, 9)) is None

    def test_counting_and_peak(self):
        store = CheckpointStore(2)
        for idx in range(1, 4):
            store.save(_rp(0, idx, float(idx)), work_done=float(idx))
        assert store.count(0) == 4 and store.count() == 5
        assert store.peak_count == 5
        assert store.total_saves == 5  # includes the two initial states

    def test_purge_before_keeps_latest_regular_and_initial(self):
        store = CheckpointStore(1)
        store.save(_rp(0, 1, 1.0), work_done=1.0)
        store.save(_rp(0, 2, 2.0), work_done=2.0)
        purged = store.purge_before(0, 5.0)
        assert purged == 1                       # the RP at 1.0
        assert store.latest_regular(0).index == 2
        assert store.get(0, 0) is not None       # initial state survives

    def test_purge_obsolete_pseudo_lines(self):
        store = CheckpointStore(2)
        # P1 takes RP index 1; a PRP for it is implanted in P2.
        store.save(_rp(0, 1, 1.0), work_done=1.0)
        store.save(_rp(1, 1, 1.1, kind=CheckpointKind.PSEUDO, origin=(0, 1)),
                   work_done=1.0)
        # P1 takes a newer RP index 2 with its PRP.
        store.save(_rp(0, 2, 2.0), work_done=2.0)
        store.save(_rp(1, 2, 2.1, kind=CheckpointKind.PSEUDO, origin=(0, 2)),
                   work_done=2.0)
        purged = store.purge_obsolete_pseudo_lines()
        assert purged >= 2
        # The PRP for the *current* RP of P1 survives, the stale one does not.
        assert store.pseudo_for_origin(1, (0, 2)) is not None
        assert store.pseudo_for_origin(1, (0, 1)) is None
        # P1's latest RP survives, its older one is gone.
        assert store.get(0, 2) is not None and store.get(0, 1) is None

    def test_total_size_uses_state_size(self):
        store = CheckpointStore(2, state_size=4.0)
        assert store.total_size() == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointStore(0)
        with pytest.raises(ValueError):
            CheckpointStore(1, state_size=0.0)

    def test_saved_state_matches(self):
        rp = _rp(0, 1, 1.0)
        state = SavedState(process=0, index=1, time=1.0,
                           kind=CheckpointKind.REGULAR, work_done=0.5)
        assert state.matches(rp)
        assert not state.matches(_rp(0, 2, 1.0))


class TestRunReport:
    def _report(self, **overrides):
        process = ProcessReport(process=0, finish_time=10.0, useful_work=10.0,
                                lost_work=1.0, checkpoint_overhead=0.5,
                                restart_overhead=0.2, waiting_time=0.3,
                                checkpoints_taken=5, pseudo_checkpoints_taken=0,
                                rollbacks=1)
        defaults = dict(scheme="test", seed=1, n_processes=1, completed=True,
                        makespan=10.0, ideal_makespan=8.0, processes=(process,),
                        rollback_count=1, rollback_distances=(2.0,),
                        lost_work_total=1.0, checkpoint_overhead_total=0.5,
                        restart_overhead_total=0.2, waiting_time_total=0.3,
                        recovery_lines_committed=0, domino_count=0,
                        peak_saved_states=6, total_saves=6)
        defaults.update(overrides)
        return RunReport(**defaults)

    def test_derived_metrics(self):
        report = self._report()
        assert report.slowdown == pytest.approx(10.0 / 8.0)
        assert report.mean_rollback_distance == 2.0
        assert report.max_rollback_distance == 2.0
        assert report.overhead_ratio == pytest.approx((1.0 + 0.5 + 0.2 + 0.3) / 8.0)

    def test_no_rollbacks_distances_zero(self):
        report = self._report(rollback_distances=(), rollback_count=0)
        assert report.mean_rollback_distance == 0.0
        assert report.max_rollback_distance == 0.0

    def test_per_process_lookup(self):
        report = self._report()
        assert report.per_process(0).total_overhead == pytest.approx(1.0)
        with pytest.raises(KeyError):
            report.per_process(3)

    def test_summary_keys(self):
        summary = self._report().summary()
        assert {"makespan", "rollbacks", "lost_work", "waiting_time",
                "sync_loss"} <= set(summary)

    def test_summary_speaks_the_strategy_metric_vocabulary(self):
        from repro.api import STRATEGY_METRICS
        summary = self._report().summary()
        assert set(summary) <= set(STRATEGY_METRICS)
        # schemes without a waiting protocol report zero loss
        assert summary["sync_loss"] == 0.0

    def test_process_report_finished_flag(self):
        unfinished = ProcessReport(process=1, finish_time=None, useful_work=3.0,
                                   lost_work=0.0, checkpoint_overhead=0.0,
                                   restart_overhead=0.0, waiting_time=0.0,
                                   checkpoints_taken=0, pseudo_checkpoints_taken=0,
                                   rollbacks=0)
        assert not unfinished.finished
