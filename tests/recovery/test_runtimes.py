"""Integration-style tests for the three recovery-scheme runtimes."""

import numpy as np
import pytest

from repro.recovery.asynchronous import AsynchronousRuntime
from repro.recovery.pseudo import PseudoRecoveryPointRuntime
from repro.recovery.synchronized import SynchronizedRuntime, SyncStrategy
from repro.workloads.generators import homogeneous_workload, pipeline_workload

ALL_RUNTIMES = [
    ("async", lambda wl, seed: AsynchronousRuntime(wl, seed=seed)),
    ("prp", lambda wl, seed: PseudoRecoveryPointRuntime(wl, seed=seed)),
    ("sync", lambda wl, seed: SynchronizedRuntime(wl, seed=seed,
                                                  sync_interval=2.0)),
]


class TestCommonBehaviour:
    @pytest.mark.parametrize("name,factory", ALL_RUNTIMES)
    def test_completes_workload(self, small_workload, name, factory):
        report = factory(small_workload, 1).run()
        assert report.completed
        assert report.makespan >= small_workload.ideal_completion_time()
        for process in report.processes:
            assert process.useful_work == pytest.approx(
                small_workload.work_per_process)

    @pytest.mark.parametrize("name,factory", ALL_RUNTIMES)
    def test_deterministic_given_seed(self, small_workload, name, factory):
        a = factory(small_workload, 7).run()
        b = factory(small_workload, 7).run()
        assert a.makespan == b.makespan
        assert a.rollback_count == b.rollback_count
        assert a.total_saves == b.total_saves

    @pytest.mark.parametrize("name,factory", ALL_RUNTIMES)
    def test_faultless_run_has_no_rollbacks(self, faultless_workload, name, factory):
        report = factory(faultless_workload, 3).run()
        assert report.rollback_count == 0
        assert report.lost_work_total == 0.0
        assert report.domino_count == 0

    @pytest.mark.parametrize("name,factory", ALL_RUNTIMES)
    def test_runtime_cannot_run_twice(self, small_workload, name, factory):
        runtime = factory(small_workload, 5)
        runtime.run()
        with pytest.raises(RuntimeError):
            runtime.run()

    @pytest.mark.parametrize("name,factory", ALL_RUNTIMES)
    def test_checkpoint_overhead_scales_with_cost(self, faultless_workload, name,
                                                  factory):
        cheap = factory(faultless_workload.with_checkpoint_cost(0.0), 4).run()
        pricey = factory(faultless_workload.with_checkpoint_cost(0.05), 4).run()
        assert pricey.checkpoint_overhead_total >= cheap.checkpoint_overhead_total
        assert cheap.checkpoint_overhead_total == 0.0


class TestAsynchronousSpecifics:
    def test_rollbacks_happen_under_faults(self, small_workload):
        report = AsynchronousRuntime(small_workload, seed=11).run()
        assert report.rollback_count > 0
        assert report.lost_work_total > 0.0
        assert all(d >= 0.0 for d in report.rollback_distances)

    def test_saved_states_grow_without_purging(self, small_workload):
        growing = AsynchronousRuntime(small_workload, seed=2).run()
        purged = AsynchronousRuntime(small_workload, seed=2,
                                     purge_behind_recovery_lines=True).run()
        assert purged.peak_saved_states <= growing.peak_saved_states

    def test_history_contains_recorded_checkpoints(self, small_workload):
        runtime = AsynchronousRuntime(small_workload, seed=6)
        report = runtime.run()
        recorded = sum(p.checkpoints_taken for p in report.processes)
        history_count = sum(
            len(runtime.tracer.history.recovery_points(pid))
            for pid in range(small_workload.n_processes))
        assert history_count == recorded

    def test_extra_metrics_present(self, small_workload):
        report = AsynchronousRuntime(small_workload, seed=8).run()
        assert "acceptance_tests" in report.extra


class TestSynchronizedSpecifics:
    def test_commits_recovery_lines(self, small_workload):
        report = SynchronizedRuntime(small_workload, seed=3,
                                     sync_interval=2.0).run()
        assert report.recovery_lines_committed > 0
        assert report.waiting_time_total > 0.0

    def test_storage_stays_bounded(self, small_workload):
        report = SynchronizedRuntime(small_workload, seed=3,
                                     sync_interval=2.0).run()
        # Only the last committed line plus in-flight saves need to be retained.
        assert report.peak_saved_states <= 4 * small_workload.n_processes

    @pytest.mark.parametrize("strategy", [SyncStrategy.CONSTANT_INTERVAL,
                                          SyncStrategy.ELAPSED_TIME,
                                          SyncStrategy.STATE_COUNT])
    def test_all_strategies_complete(self, small_workload, strategy):
        report = SynchronizedRuntime(small_workload, seed=5, strategy=strategy,
                                     sync_interval=2.0, state_threshold=5).run()
        assert report.completed

    def test_mean_sync_loss_close_to_analytic_without_faults(self, faultless_workload):
        from repro.analysis.synchronized_loss import computation_loss

        runtime = SynchronizedRuntime(
            faultless_workload.with_work(300.0).with_checkpoint_cost(0.0),
            seed=17, sync_interval=3.0)
        runtime.run()
        analytic = computation_loss(faultless_workload.params.mu)
        assert runtime.mean_sync_loss() == pytest.approx(analytic, rel=0.2)

    def test_parameter_validation(self, small_workload):
        with pytest.raises(ValueError):
            SynchronizedRuntime(small_workload, sync_interval=0.0)
        with pytest.raises(ValueError):
            SynchronizedRuntime(small_workload, state_threshold=0)


class TestPseudoSpecifics:
    def test_prps_are_implanted_for_every_rp(self, small_workload):
        runtime = PseudoRecoveryPointRuntime(small_workload, seed=4)
        report = runtime.run()
        rps = sum(p.checkpoints_taken for p in report.processes)
        prps = sum(p.pseudo_checkpoints_taken for p in report.processes)
        # Each RP triggers up to (n-1) PRPs (fewer once peers have finished).
        assert prps > 0
        assert prps <= rps * (small_workload.n_processes - 1)

    def test_storage_bounded_by_purging(self, small_workload):
        purged = PseudoRecoveryPointRuntime(small_workload, seed=4).run()
        hoarding = PseudoRecoveryPointRuntime(small_workload, seed=4,
                                              purge_storage=False).run()
        assert purged.peak_saved_states <= hoarding.peak_saved_states
        assert purged.peak_saved_states <= 4 * small_workload.n_processes ** 2

    def test_rollback_distance_shorter_than_async_on_average(self):
        workload = pipeline_workload(n=4, work=25.0, error_rate=0.06)
        async_distances, prp_distances = [], []
        for seed in range(6):
            async_distances.append(AsynchronousRuntime(workload, seed=seed).run()
                                   .mean_rollback_distance)
            prp_distances.append(PseudoRecoveryPointRuntime(workload, seed=seed).run()
                                 .mean_rollback_distance)
        assert np.mean(prp_distances) <= np.mean(async_distances) * 1.25

    def test_extra_metrics_track_implantation(self, small_workload):
        report = PseudoRecoveryPointRuntime(small_workload, seed=4).run()
        assert report.extra["prp_implanted"] > 0
        assert report.extra["implantation_overhead"] >= 0.0
