"""Markdown link check over README.md and docs/.

Every relative link (and image) in the documentation must resolve to a file
that exists in the repository; in-page anchors must match a heading of the
target document.  External http(s) links are only syntax-checked — CI must
not depend on third-party servers being up.
"""

import os
import re

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

#: The documentation set under link check.
DOC_FILES = ["README.md", "ROADMAP.md", "CHANGES.md",
             "docs/INDEX.md", "docs/ARCHITECTURE.md",
             "docs/RUNNER.md", "docs/ANALYTIC.md",
             "docs/SERVICE.md", "docs/WAREHOUSE.md"]

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _github_anchor(heading: str) -> str:
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _links(path: str):
    with open(path, encoding="utf-8") as handle:
        text = _CODE_FENCE.sub("", handle.read())
    return _LINK.findall(text)


def _anchors(path: str):
    with open(path, encoding="utf-8") as handle:
        return {_github_anchor(h) for h in _HEADING.findall(handle.read())}


@pytest.mark.parametrize("doc", DOC_FILES)
def test_relative_links_resolve(doc):
    doc_path = os.path.join(REPO_ROOT, doc)
    assert os.path.isfile(doc_path), f"documented file {doc} is missing"
    base = os.path.dirname(doc_path)
    broken = []
    for target in _links(doc_path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, anchor = target.partition("#")
        resolved = doc_path if not target else \
            os.path.normpath(os.path.join(base, target))
        if target and not os.path.exists(resolved):
            broken.append(f"{target} (file missing)")
            continue
        if anchor and resolved.endswith(".md") and \
                anchor not in _anchors(resolved):
            broken.append(f"{target}#{anchor} (no such heading)")
    assert not broken, f"{doc} has broken links: {broken}"


def test_readme_scenario_table_is_complete():
    """Every registered scenario is documented in the README table."""
    import sys
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.runner import list_scenarios, load_builtin_scenarios
    load_builtin_scenarios()
    with open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8") as handle:
        readme = handle.read()
    missing = [spec.name for spec in list_scenarios()
               if f"`{spec.name}`" not in readme]
    assert not missing, f"README scenario table lacks: {missing}"
