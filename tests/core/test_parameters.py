"""Unit tests for repro.core.parameters."""

import numpy as np
import pytest

from repro.core.parameters import SystemParameters


class TestConstruction:
    def test_symmetric_factory(self):
        p = SystemParameters.symmetric(4, mu=2.0, lam=0.5)
        assert p.n == 4
        assert np.allclose(p.mu, 2.0)
        assert p.lam[0, 1] == 0.5 and p.lam[2, 2] == 0.0

    def test_three_process_factory_matches_paper_layout(self):
        p = SystemParameters.three_process((1.5, 1.0, 0.5), (1.0, 2.0, 3.0))
        assert p.pair_rate(0, 1) == 1.0   # lambda_12
        assert p.pair_rate(1, 2) == 2.0   # lambda_23
        assert p.pair_rate(2, 0) == 3.0   # lambda_31

    def test_from_pair_rates_defaults_missing_pairs_to_zero(self):
        p = SystemParameters.from_pair_rates([1.0, 1.0, 1.0], [(0, 1, 2.0)])
        assert p.pair_rate(0, 1) == 2.0
        assert p.pair_rate(1, 2) == 0.0

    def test_rejects_nonpositive_mu(self):
        with pytest.raises(ValueError):
            SystemParameters(mu=[1.0, 0.0], lam=np.zeros((2, 2)))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            SystemParameters(mu=[1.0, 1.0], lam=np.zeros((3, 3)))

    def test_rejects_asymmetric_lambda(self):
        lam = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError):
            SystemParameters(mu=[1.0, 1.0], lam=lam)

    def test_three_process_requires_three_values(self):
        with pytest.raises(ValueError):
            SystemParameters.three_process((1.0, 1.0), (1.0, 1.0, 1.0))

    def test_arrays_are_read_only(self, params_case1):
        with pytest.raises(ValueError):
            params_case1.mu[0] = 5.0


class TestDerivedQuantities:
    def test_totals(self, params_case2):
        assert params_case2.total_rp_rate == pytest.approx(3.0)
        assert params_case2.total_interaction_rate == pytest.approx(3.0)

    def test_rho_matches_figure5_caption(self, params_case1):
        # rho = 2 * sum_{i<j} lambda / sum mu = 2*3/3 = 2 for case 1.
        assert params_case1.rho == pytest.approx(2.0)

    def test_pairs_lists_only_positive_rates(self):
        p = SystemParameters.from_pair_rates([1.0] * 3, [(0, 1, 1.0)])
        assert p.pairs == [(0, 1)]

    def test_interaction_rate_of_process(self, params_case1):
        assert params_case1.interaction_rate_of(0) == pytest.approx(2.0)

    def test_uniformization_constant(self, params_case1):
        assert params_case1.uniformization_constant() == pytest.approx(6.0)

    def test_is_symmetric(self, params_case1, params_case2):
        assert params_case1.is_symmetric()
        assert not params_case2.is_symmetric()

    def test_scaled_preserves_rho(self, params_case2):
        scaled = params_case2.scaled(3.0)
        assert scaled.rho == pytest.approx(params_case2.rho)
        assert scaled.total_rp_rate == pytest.approx(9.0)

    def test_with_rho_rescales_lambda_only(self, params_case1):
        adjusted = params_case1.with_rho(1.0)
        assert adjusted.rho == pytest.approx(1.0)
        assert np.allclose(adjusted.mu, params_case1.mu)

    def test_with_rho_zero_interactions_error(self):
        p = SystemParameters(mu=[1.0, 1.0], lam=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            p.with_rho(1.0)

    def test_describe_mentions_every_pair(self, params_case1):
        text = params_case1.describe()
        assert "n=3" in text and "ρ=" in text
