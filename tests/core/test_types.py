"""Unit tests for repro.core.types."""

import pytest

from repro.core.types import CheckpointKind, Interaction, RecoveryLine, RecoveryPoint


class TestCheckpointKind:
    def test_regular_and_initial_are_verified(self):
        assert CheckpointKind.REGULAR.verified
        assert CheckpointKind.INITIAL.verified

    def test_pseudo_is_not_verified(self):
        assert not CheckpointKind.PSEUDO.verified


class TestRecoveryPoint:
    def test_label_uses_paper_notation(self):
        rp = RecoveryPoint(time=1.0, process=0, index=2)
        assert rp.label == "RP_1^2"

    def test_ordering_by_time(self):
        early = RecoveryPoint(time=1.0, process=1, index=0)
        late = RecoveryPoint(time=2.0, process=0, index=0)
        assert early < late

    def test_pseudo_requires_origin(self):
        with pytest.raises(ValueError):
            RecoveryPoint(time=1.0, process=0, index=0, kind=CheckpointKind.PSEUDO)

    def test_pseudo_with_origin_ok(self):
        rp = RecoveryPoint(time=1.0, process=0, index=0,
                           kind=CheckpointKind.PSEUDO, origin=(1, 3))
        assert rp.origin == (1, 3)
        assert rp.label.startswith("PRP")

    @pytest.mark.parametrize("kwargs", [
        dict(time=-1.0, process=0, index=0),
        dict(time=0.0, process=-1, index=0),
        dict(time=0.0, process=0, index=-2),
    ])
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryPoint(**kwargs)

    def test_regular_usable_for_anyone(self):
        rp = RecoveryPoint(time=1.0, process=0, index=1)
        assert rp.is_usable_for(0) and rp.is_usable_for(2)

    def test_pseudo_usable_only_for_triggering_process_failure(self):
        prp = RecoveryPoint(time=1.0, process=2, index=1,
                            kind=CheckpointKind.PSEUDO, origin=(0, 4))
        assert prp.is_usable_for(0)
        assert not prp.is_usable_for(1)


class TestInteraction:
    def test_defaults_receive_to_send_time(self):
        i = Interaction(time=1.5, source=0, target=1)
        assert i.receive_time == 1.5
        assert i.window() == (1.5, 1.5)

    def test_rejects_self_interaction(self):
        with pytest.raises(ValueError):
            Interaction(time=1.0, source=2, target=2)

    def test_rejects_receive_before_send(self):
        with pytest.raises(ValueError):
            Interaction(time=2.0, source=0, target=1, receive_time=1.0)

    def test_pair_is_unordered(self):
        assert Interaction(time=1.0, source=3, target=1).pair == (1, 3)

    def test_involves(self):
        i = Interaction(time=1.0, source=0, target=2)
        assert i.involves(0) and i.involves(2) and not i.involves(1)


class TestRecoveryLine:
    def _line(self):
        return RecoveryLine(points={
            0: RecoveryPoint(time=1.0, process=0, index=1),
            1: RecoveryPoint(time=2.0, process=1, index=1),
        })

    def test_formation_time_is_latest_member(self):
        assert self._line().formation_time == 2.0
        assert self._line().earliest_time == 1.0

    def test_requires_matching_process_keys(self):
        with pytest.raises(ValueError):
            RecoveryLine(points={0: RecoveryPoint(time=1.0, process=1, index=0)})

    def test_empty_line_rejected(self):
        with pytest.raises(ValueError):
            RecoveryLine(points={})

    def test_equality_and_hash(self):
        assert self._line() == self._line()
        assert hash(self._line()) == hash(self._line())

    def test_is_pseudo(self):
        line = RecoveryLine(points={
            0: RecoveryPoint(time=1.0, process=0, index=1),
            1: RecoveryPoint(time=1.5, process=1, index=1,
                             kind=CheckpointKind.PSEUDO, origin=(0, 1)),
        })
        assert line.is_pseudo()
        assert not self._line().is_pseudo()

    def test_point_for(self):
        line = self._line()
        assert line.point_for(1).time == 2.0
        assert line.processes == (0, 1)
