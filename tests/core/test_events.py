"""Unit tests for repro.core.events."""

import pytest

from repro.core.events import Event, EventLog
from repro.core.types import CheckpointKind, EventKind


class TestEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            Event(time=-1.0, kind=EventKind.ERROR, process=0)

    def test_ordering_by_time_then_seq(self):
        a = Event(time=1.0, kind=EventKind.ERROR, process=0, seq=0)
        b = Event(time=1.0, kind=EventKind.ERROR, process=0, seq=1)
        assert a < b


class TestEventLog:
    def test_append_and_iterate(self):
        log = EventLog()
        log.append(0.5, EventKind.RECOVERY_POINT, 0, index=0)
        log.append(1.0, EventKind.INTERACTION, 0, peer=1)
        assert len(log) == 2
        assert [e.kind for e in log] == [EventKind.RECOVERY_POINT, EventKind.INTERACTION]
        assert log.end_time == 1.0

    def test_rejects_time_regression(self):
        log = EventLog()
        log.append(2.0, EventKind.ERROR, 0)
        with pytest.raises(ValueError):
            log.append(1.0, EventKind.ERROR, 0)

    def test_filter_by_kind_and_process(self):
        log = EventLog()
        log.append(0.0, EventKind.RECOVERY_POINT, 0)
        log.append(1.0, EventKind.RECOVERY_POINT, 1)
        log.append(2.0, EventKind.ERROR, 1)
        assert len(log.filter(kind=EventKind.RECOVERY_POINT)) == 2
        assert len(log.filter(process=1)) == 2
        assert len(log.filter(kind=EventKind.ERROR, process=0)) == 0

    def test_filter_with_predicate(self):
        log = EventLog()
        log.append(0.0, EventKind.ERROR, 0, local=True)
        log.append(1.0, EventKind.ERROR, 0, local=False)
        assert len(log.filter(predicate=lambda e: e.data.get("local"))) == 1

    def test_count_and_processes(self):
        log = EventLog()
        log.append(0.0, EventKind.RECOVERY_POINT, 2)
        log.append(0.5, EventKind.RECOVERY_POINT, 0)
        assert log.count(EventKind.RECOVERY_POINT) == 2
        assert log.processes() == [0, 2]

    def test_summary_counts_by_kind(self):
        log = EventLog()
        log.append(0.0, EventKind.RECOVERY_POINT, 0)
        log.append(0.1, EventKind.ROLLBACK, 0, restart_time=0.0, cause=0)
        summary = log.summary()
        assert summary["recovery_point"] == 1
        assert summary["rollback"] == 1

    def test_to_history_translates_checkpoints_and_interactions(self):
        log = EventLog()
        log.append(1.0, EventKind.RECOVERY_POINT, 0, index=1)
        log.append(1.5, EventKind.INTERACTION, 0, peer=1, receive_time=1.5)
        log.append(2.0, EventKind.PSEUDO_RECOVERY_POINT, 1, origin=(0, 1))
        history = log.to_history(n_processes=2)
        assert history.checkpoint_count(0, CheckpointKind.REGULAR) == 1
        assert history.checkpoint_count(1, CheckpointKind.PSEUDO) == 1
        assert len(history.interactions) == 1

    def test_to_history_requires_peer_for_interactions(self):
        log = EventLog()
        log.append(1.0, EventKind.INTERACTION, 0)
        with pytest.raises(ValueError):
            log.to_history(n_processes=2)

    def test_to_history_skips_non_initiator_side(self):
        log = EventLog()
        log.append(1.0, EventKind.INTERACTION, 0, peer=1, initiator=True)
        log.append(1.0, EventKind.INTERACTION, 1, peer=0, initiator=False)
        history = log.to_history(n_processes=2)
        assert len(history.interactions) == 1

    def test_extend_preserves_payload(self):
        source = EventLog()
        source.append(0.0, EventKind.ERROR, 1, origin=2)
        clone = EventLog()
        clone.extend(source.events)
        assert clone[0].data["origin"] == 2
