"""Unit tests for repro.core.intervals."""

import pytest

from repro.core.history import HistoryDiagram
from repro.core.intervals import extract_intervals, summarize_intervals
from repro.core.recovery_line import ExactRecoveryLineDetector


class TestExtractIntervals:
    def test_simple_history_intervals(self, simple_history):
        observations = extract_intervals(simple_history)
        # Lines at 0, 1.0, 1.2, 3.5 under the latest-RP detector => three intervals.
        assert len(observations) == 3
        assert observations[0].length == pytest.approx(1.0)
        assert observations[1].length == pytest.approx(0.2)
        assert observations[2].length == pytest.approx(2.3)

    def test_rp_counts_attribute_to_correct_interval(self, simple_history):
        observations = extract_intervals(simple_history)
        assert observations[0].rp_counts == (1, 0)
        assert observations[1].rp_counts == (0, 1)
        assert observations[2].rp_counts == (1, 1)
        assert observations[2].total_rp_count == 2

    def test_interaction_count(self, simple_history):
        observations = extract_intervals(simple_history)
        assert observations[0].interaction_count == 0
        assert observations[1].interaction_count == 0
        assert observations[2].interaction_count == 1

    def test_max_intervals_truncates(self, simple_history):
        observations = extract_intervals(simple_history, max_intervals=1)
        assert len(observations) == 1

    def test_custom_detector(self, figure1_history):
        exact = extract_intervals(figure1_history, ExactRecoveryLineDetector())
        default = extract_intervals(figure1_history)
        assert len(exact) >= len(default)

    def test_empty_history_has_no_intervals(self):
        assert extract_intervals(HistoryDiagram(2)) == []


class TestSummaries:
    def test_summary_values(self, simple_history):
        summary = summarize_intervals(extract_intervals(simple_history))
        assert summary["count"] == 3
        assert summary["mean_X"] == pytest.approx(3.5 / 3)
        assert summary["mean_total_L"] == pytest.approx(4.0 / 3)
        assert summary["mean_L"].shape == (2,)

    def test_summary_of_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_intervals([])
