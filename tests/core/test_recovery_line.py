"""Unit tests for repro.core.recovery_line."""

import pytest

from repro.core.history import HistoryDiagram
from repro.core.recovery_line import (
    ExactRecoveryLineDetector,
    LatestRPRecoveryLineDetector,
    find_recovery_lines,
    is_consistent_line,
)
from repro.core.types import CheckpointKind


class TestConsistency:
    def test_consistent_when_no_messages(self):
        history = HistoryDiagram(2)
        a = history.add_recovery_point(0, 1.0)
        b = history.add_recovery_point(1, 2.0)
        assert is_consistent_line(history, {0: a, 1: b})

    def test_inconsistent_when_message_sandwiched(self):
        history = HistoryDiagram(2)
        a = history.add_recovery_point(0, 1.0)
        history.add_interaction(0, 1, 1.5)
        b = history.add_recovery_point(1, 2.0)
        assert not is_consistent_line(history, {0: a, 1: b})

    def test_message_outside_window_is_fine(self):
        history = HistoryDiagram(2)
        history.add_interaction(0, 1, 0.5)
        a = history.add_recovery_point(0, 1.0)
        b = history.add_recovery_point(1, 2.0)
        history.add_interaction(0, 1, 3.0)
        assert is_consistent_line(history, {0: a, 1: b})

    def test_message_between_other_pair_does_not_matter(self):
        history = HistoryDiagram(3)
        a = history.add_recovery_point(0, 1.0)
        b = history.add_recovery_point(1, 3.0)
        history.add_interaction(0, 2, 2.0)  # involves P1 and P3, not the (0,1) pair
        assert is_consistent_line(history, {0: a, 1: b})


class TestExactDetector:
    def test_initial_line_always_present(self):
        lines = ExactRecoveryLineDetector().find_lines(HistoryDiagram(3))
        assert len(lines) == 1
        assert lines[0].formation_time == 0.0

    def test_simple_history_forms_lines(self, simple_history):
        lines = ExactRecoveryLineDetector().find_lines(simple_history)
        # Initial line, the line at (1.0, 1.2), and the line at (3.0, 3.5).
        assert len(lines) >= 3
        assert lines[-1].formation_time == pytest.approx(3.5)

    def test_sandwiched_message_blocks_line(self):
        history = HistoryDiagram(2)
        history.add_recovery_point(0, 1.0)
        history.add_interaction(0, 1, 1.5)
        history.add_recovery_point(1, 2.0)
        lines = ExactRecoveryLineDetector().find_lines(history)
        # Only the initial line: RP_1 and RP_2 are separated by the message, and
        # combining either with the other's initial state is blocked too...
        # except RP at 1.0 with P2's initial state at 0.0 has the message at 1.5
        # outside (0,1) window, so that *is* a line.
        times = [line.formation_time for line in lines]
        assert 2.0 not in times

    def test_figure1_history_recovers_paper_layers(self, figure1_history):
        lines = ExactRecoveryLineDetector().find_lines(figure1_history)
        # The early layer (1.8, 2.0, 2.1) must be a detected recovery line.
        assert any(abs(line.formation_time - 2.1) < 1e-9 for line in lines)

    def test_include_pseudo_allows_prp_members(self):
        history = HistoryDiagram(2)
        rp = history.add_recovery_point(0, 1.0)
        history.add_recovery_point(1, 1.1, kind=CheckpointKind.PSEUDO,
                                   origin=(0, rp.index))
        with_pseudo = ExactRecoveryLineDetector(include_pseudo=True).find_lines(history)
        without = ExactRecoveryLineDetector(include_pseudo=False).find_lines(history)
        assert len(with_pseudo) >= len(without)

    def test_intervals_are_nonnegative(self, figure1_history):
        intervals = ExactRecoveryLineDetector().intervals(figure1_history)
        assert all(x >= 0.0 for x in intervals)

    def test_max_candidates_must_be_positive(self):
        with pytest.raises(ValueError):
            ExactRecoveryLineDetector(max_candidates_per_process=0)


class TestLatestRPDetector:
    def test_line_when_all_last_actions_are_rps(self, simple_history):
        lines = LatestRPRecoveryLineDetector().find_lines(simple_history)
        times = [line.formation_time for line in lines]
        # Initial line at 0; rule R4 lines at 1.0 and 1.2 (no interaction yet, so
        # every new RP immediately closes a line); after the message at 2.0 both
        # processes must checkpoint again, which completes at 3.5.
        assert times == [0.0, 1.0, 1.2, 3.5]

    def test_interaction_clears_both_bits(self):
        history = HistoryDiagram(2)
        history.add_recovery_point(0, 1.0)
        history.add_interaction(0, 1, 1.5)
        history.add_recovery_point(1, 2.0)
        lines = LatestRPRecoveryLineDetector().find_lines(history)
        # The RP at 1.0 closes a line via R4; after the interaction clears both
        # bits, the single RP of P2 at 2.0 cannot close another one.
        assert [line.formation_time for line in lines] == [0.0, 1.0]

    def test_conservative_relative_to_exact(self, figure1_history):
        exact = ExactRecoveryLineDetector().find_lines(figure1_history)
        latest = LatestRPRecoveryLineDetector().find_lines(figure1_history)
        assert len(latest) <= len(exact)

    def test_r4_direct_transition_counts(self):
        # Immediately after a line, a single new RP forms the next line (rule R4).
        history = HistoryDiagram(2)
        history.add_recovery_point(0, 1.0)
        history.add_recovery_point(1, 1.5)
        history.add_recovery_point(0, 2.0)
        lines = LatestRPRecoveryLineDetector().find_lines(history)
        assert [line.formation_time for line in lines] == [0.0, 1.0, 1.5, 2.0]


class TestConvenienceWrapper:
    def test_find_recovery_lines_exact_default(self, simple_history):
        assert len(find_recovery_lines(simple_history)) >= 3

    def test_find_recovery_lines_model_condition(self, simple_history):
        assert len(find_recovery_lines(simple_history, exact=False)) == 4

    def test_pseudo_with_model_detector_rejected(self, simple_history):
        with pytest.raises(ValueError):
            find_recovery_lines(simple_history, exact=False, include_pseudo=True)
