"""Unit tests for repro.core.rollback (rollback propagation / domino effect)."""

import pytest

from repro.core.history import HistoryDiagram
from repro.core.rollback import is_domino, propagate_rollback, rollback_distance
from repro.core.types import CheckpointKind


class TestBasicPropagation:
    def test_isolated_failure_rolls_back_only_failing_process(self):
        history = HistoryDiagram(2)
        history.add_recovery_point(0, 1.0)
        history.add_recovery_point(1, 1.0)
        result = propagate_rollback(history, failed_process=0, failure_time=2.0)
        assert result.affected == (0,)
        assert result.restart_points[0].time == 1.0
        assert result.max_distance == pytest.approx(1.0)
        assert not result.domino

    def test_message_after_checkpoint_propagates(self, simple_history):
        # P1 fails at 4.0; its RP at 3.0 precedes the message at 2.0, so no
        # propagation is necessary.
        result = propagate_rollback(simple_history, 0, 4.0)
        assert result.affected == (0,)
        # But failing before its last checkpoint forces the peer back too.
        result2 = propagate_rollback(simple_history, 0, 2.5)
        assert set(result2.affected) == {0, 1}
        assert result2.restart_points[1].time == pytest.approx(1.2)

    def test_rollback_to_initial_state_is_domino(self):
        history = HistoryDiagram(2)
        history.add_interaction(0, 1, 0.5)
        result = propagate_rollback(history, 0, 1.0)
        assert result.restart_points[0].kind is CheckpointKind.INITIAL
        assert result.domino
        assert is_domino(history, 0, 1.0)

    def test_figure1_scenario_restarts_at_early_layer(self, figure1_history):
        result = propagate_rollback(figure1_history, failed_process=0,
                                    failure_time=6.2)
        assert set(result.affected) == {0, 1, 2}
        assert result.restart_points[0].time == pytest.approx(1.8)
        assert result.restart_points[1].time == pytest.approx(2.0)
        assert result.restart_points[2].time == pytest.approx(2.1)
        assert result.max_distance == pytest.approx(6.2 - 1.8)
        assert not result.domino

    def test_rollback_distance_shortcut(self, figure1_history):
        assert rollback_distance(figure1_history, 0, 6.2) == pytest.approx(4.4)


class TestFilters:
    def test_checkpoint_filter_can_exclude_regular_rps(self):
        history = HistoryDiagram(1)
        history.add_recovery_point(0, 1.0)
        result = propagate_rollback(history, 0, 2.0,
                                    checkpoint_filter=lambda rp: False)
        assert result.restart_points[0].kind is CheckpointKind.INITIAL

    def test_pseudo_checkpoints_excluded_by_default(self):
        history = HistoryDiagram(2)
        history.add_recovery_point(1, 0.5)
        history.add_recovery_point(0, 1.0, kind=CheckpointKind.PSEUDO, origin=(1, 1))
        result = propagate_rollback(history, 0, 2.0)
        assert result.restart_points[0].kind is CheckpointKind.INITIAL

    def test_pseudo_checkpoints_usable_with_filter(self):
        history = HistoryDiagram(2)
        history.add_recovery_point(1, 0.5)
        history.add_recovery_point(0, 1.0, kind=CheckpointKind.PSEUDO, origin=(1, 1))
        result = propagate_rollback(
            history, 0, 2.0,
            checkpoint_filter=lambda rp: rp.kind is CheckpointKind.PSEUDO)
        assert result.restart_points[0].time == pytest.approx(1.0)

    def test_excluded_interactions_do_not_propagate(self, simple_history):
        interaction = simple_history.interactions[0]
        result = propagate_rollback(simple_history, 0, 2.5,
                                    excluded_interactions={interaction})
        assert result.affected == (0,)


class TestResultMetrics:
    def test_distances_and_total_loss(self, figure1_history):
        result = propagate_rollback(figure1_history, 0, 6.2)
        assert result.distance(0) == pytest.approx(4.4)
        assert result.distance(1) == pytest.approx(4.2)
        assert result.total_lost_computation == pytest.approx(4.4 + 4.2 + 4.1)

    def test_unaffected_process_distance_zero(self, simple_history):
        result = propagate_rollback(simple_history, 0, 4.0)
        assert result.distance(1) == 0.0

    def test_crossed_checkpoints_counted(self, figure1_history):
        result = propagate_rollback(figure1_history, 0, 6.2)
        # P1 discards its RP at 5.0 (one checkpoint crossed).
        assert result.crossed_checkpoints(figure1_history, 0) == 1
        assert result.crossed_checkpoints(figure1_history, 1) == 1

    def test_restart_line_is_consistent(self, figure1_history):
        from repro.core.recovery_line import is_consistent_line

        result = propagate_rollback(figure1_history, 0, 6.2)
        assert is_consistent_line(figure1_history, dict(result.restart_points))

    def test_invalidated_interactions_reported(self, figure1_history):
        result = propagate_rollback(figure1_history, 0, 6.2)
        # All five messages of the figure lie after the restart layer.
        assert len(result.invalidated_interactions) == 5

    def test_invalid_arguments(self, simple_history):
        with pytest.raises(ValueError):
            propagate_rollback(simple_history, 7, 1.0)
        with pytest.raises(ValueError):
            propagate_rollback(simple_history, 0, -1.0)
