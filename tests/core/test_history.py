"""Unit tests for repro.core.history."""

import pytest

from repro.core.history import HistoryDiagram
from repro.core.types import CheckpointKind


class TestConstruction:
    def test_every_process_starts_with_initial_state(self):
        history = HistoryDiagram(3)
        for pid in range(3):
            points = history.checkpoints(pid)
            assert len(points) == 1
            assert points[0].kind is CheckpointKind.INITIAL
            assert points[0].time == 0.0

    def test_rejects_zero_processes(self):
        with pytest.raises(ValueError):
            HistoryDiagram(0)

    def test_process_range_checked(self):
        history = HistoryDiagram(2)
        with pytest.raises(ValueError):
            history.add_recovery_point(5, 1.0)
        with pytest.raises(ValueError):
            history.add_interaction(0, 9, 1.0)


class TestCheckpoints:
    def test_indices_increase_per_process(self):
        history = HistoryDiagram(2)
        rp1 = history.add_recovery_point(0, 1.0)
        rp2 = history.add_recovery_point(0, 2.0)
        assert (rp1.index, rp2.index) == (1, 2)

    def test_out_of_order_insertion_kept_sorted(self):
        history = HistoryDiagram(1)
        history.add_recovery_point(0, 5.0)
        history.add_recovery_point(0, 2.0)
        times = [rp.time for rp in history.checkpoints(0)]
        assert times == sorted(times)

    def test_kind_filtering(self):
        history = HistoryDiagram(2)
        history.add_recovery_point(0, 1.0)
        history.add_recovery_point(0, 2.0, kind=CheckpointKind.PSEUDO, origin=(1, 1))
        assert history.checkpoint_count(0, CheckpointKind.REGULAR) == 1
        assert history.checkpoint_count(0, CheckpointKind.PSEUDO) == 1
        assert len(history.recovery_points(0)) == 1

    def test_latest_checkpoint_before(self):
        history = HistoryDiagram(1)
        history.add_recovery_point(0, 1.0)
        history.add_recovery_point(0, 3.0)
        assert history.latest_checkpoint_before(0, 2.5).time == 1.0
        assert history.latest_checkpoint_before(0, 3.0).time == 3.0
        assert history.latest_checkpoint_before(0, 3.0, inclusive=False).time == 1.0
        assert history.latest_checkpoint_before(0, 0.5).kind is CheckpointKind.INITIAL

    def test_latest_checkpoint_usable_only_skips_foreign_pseudo(self):
        history = HistoryDiagram(2)
        history.add_recovery_point(0, 1.0)
        history.add_recovery_point(0, 2.0, kind=CheckpointKind.PSEUDO, origin=(1, 1))
        usable = history.latest_checkpoint_before(0, 3.0, usable_only=True,
                                                  failed_process=0)
        assert usable.time == 1.0
        # When the failure is in the PRP's triggering process, the PRP is usable.
        usable_for_1 = history.latest_checkpoint_before(0, 3.0, usable_only=True,
                                                        failed_process=1)
        assert usable_for_1.time == 2.0


class TestInteractions:
    def test_interactions_between_open_window(self, simple_history):
        assert len(simple_history.interactions_between(0, 1, 1.0, 3.0)) == 1
        assert len(simple_history.interactions_between(0, 1, 2.0, 3.0)) == 0
        assert len(simple_history.interactions_between(0, 1, 2.0, 3.0, closed=True)) == 1

    def test_interactions_between_is_symmetric_in_window(self, simple_history):
        forward = simple_history.interactions_between(0, 1, 1.0, 3.0)
        backward = simple_history.interactions_between(0, 1, 3.0, 1.0)
        assert forward == backward

    def test_interactions_involving_uses_endpoint_of_that_process(self):
        history = HistoryDiagram(2)
        history.add_interaction(0, 1, 1.0, receive_time=2.0)
        assert len(history.interactions_involving(0, 0.0, 1.5)) == 1   # send at 1.0
        assert len(history.interactions_involving(1, 0.0, 1.5)) == 0   # receive at 2.0
        assert len(history.interactions_involving(1, 1.5, 2.5)) == 1

    def test_last_event_kind(self, simple_history):
        assert simple_history.last_event_kind(0, 1.5) == "rp"
        assert simple_history.last_event_kind(0, 2.5) == "interaction"
        assert simple_history.last_event_kind(0, 3.2) == "rp"
        assert HistoryDiagram(1).last_event_kind(0, 1.0) == "none"


class TestMisc:
    def test_end_time_tracks_latest_event(self, simple_history):
        assert simple_history.end_time == 3.5

    def test_validate_passes_for_wellformed(self, simple_history, figure1_history):
        simple_history.validate()
        figure1_history.validate()

    def test_render_ascii_contains_processes_and_marks(self, simple_history):
        art = simple_history.render_ascii(width=40)
        assert "P1" in art and "P2" in art
        assert "o" in art and "x" in art

    def test_repr_mentions_counts(self, simple_history):
        assert "interactions=1" in repr(simple_history)
