"""Regression tests for the generalized domino-effect path.

The domino-effect example path used to hard-wire three processes and
exponential holding times.  These tests pin the generalization:
``domino_trace`` reproduces the paper's Figure 1 bit for bit at ``n = 3``
and scales the same structure to any ``n``; ``cascade_history`` delegates
the exponential law to the legacy simulator byte-identically and serves
renewal laws through the same front door; and ``expand_cascade`` is the
deterministic BFS the recovery runtimes execute ``fault_model`` blocks with.
"""

import pytest

from repro.core.parameters import SystemParameters
from repro.core.rollback import propagate_rollback
from repro.faults.propagation import cascade_history, expand_cascade
from repro.markov.montecarlo import ModelSimulator
from repro.workloads.trace import domino_trace, figure1_trace


# ---------------------------------------------------------------- the trace
class TestDominoTrace:
    def test_three_process_trace_is_figure1_bit_for_bit(self):
        assert domino_trace(3).events == figure1_trace().events
        assert domino_trace(3).n_processes == figure1_trace().n_processes

    @pytest.mark.parametrize("n", [2, 4, 5, 8, 12])
    def test_general_n_is_valid_and_positive(self, n):
        trace = domino_trace(n)
        assert trace.n_processes == n
        assert all(event.time > 0.0 for event in trace.events)
        # layer RPs + one (msg, rp) pair per cycle step + n-1 closing msgs
        assert len(trace.events) == n + 2 * n + (n - 1)
        trace.to_history()

    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_failure_dominoes_back_to_the_early_layer(self, n):
        """The generalized structure preserves Figure 1's point: a late
        failure of P_1 rolls every process back to the early RP layer."""
        trace = domino_trace(n)
        history = trace.to_history()
        failure_time = trace.duration + 0.4
        result = propagate_rollback(history, failed_process=0,
                                    failure_time=failure_time)
        assert set(result.affected) == set(range(n))
        layer_times = [event.time for event in trace.events[:n]]
        for pid in range(n):
            assert result.restart_points[pid].time <= layer_times[pid] + 1e-9

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            domino_trace(1)
        with pytest.raises(ValueError):
            domino_trace(3, spacing=0.0)


# ------------------------------------------------------------- the histories
class TestCascadeHistory:
    params = SystemParameters.symmetric(3, 1.0, 0.5)

    def test_exponential_is_bit_identical_to_the_legacy_simulator(self):
        ours = cascade_history(self.params, 25.0, seed=11)
        legacy = ModelSimulator(self.params, seed=11).generate_history(25.0)
        assert ours.n_processes == legacy.n_processes
        assert [(rp.process, rp.time) for pid in range(3)
                for rp in ours.recovery_points(pid)] == \
            [(rp.process, rp.time) for pid in range(3)
             for rp in legacy.recovery_points(pid)]
        assert [(i.source, i.target, i.time) for i in ours.interactions] == \
            [(i.source, i.target, i.time) for i in legacy.interactions]

    def test_exponential_rejects_a_shape(self):
        with pytest.raises(ValueError):
            cascade_history(self.params, 10.0, seed=1, failure_shape=2.0)

    @pytest.mark.parametrize("law,shape", [("weibull", 2.0),
                                           ("lognormal", 0.8)])
    def test_renewal_histories_are_served_and_reproducible(self, law, shape):
        first = cascade_history(self.params, 25.0, seed=4, failure_law=law,
                                failure_shape=shape)
        again = cascade_history(self.params, 25.0, seed=4, failure_law=law,
                                failure_shape=shape)
        assert first.n_processes == 3
        assert sum(len(first.recovery_points(p)) for p in range(3)) > 0
        assert [(rp.process, rp.time) for pid in range(3)
                for rp in first.recovery_points(pid)] == \
            [(rp.process, rp.time) for pid in range(3)
             for rp in again.recovery_points(pid)]


# ---------------------------------------------------------------- the BFS
class TestExpandCascade:
    neighbors = {0: [1, 2], 1: [0, 2], 2: [0, 1], 3: []}

    def test_zero_probability_returns_the_seeds(self):
        assert expand_cascade([2, 0], self.neighbors.__getitem__, 0.0, 5,
                              lambda p: True) == [2, 0]

    def test_zero_depth_returns_the_seeds(self):
        assert expand_cascade([0], self.neighbors.__getitem__, 1.0, 0,
                              lambda p: True) == [0]

    def test_certain_propagation_reaches_the_component(self):
        assert expand_cascade([0], self.neighbors.__getitem__, 1.0, 3,
                              lambda p: True) == [0, 1, 2]

    def test_depth_limits_the_hops(self):
        chain = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}
        assert expand_cascade([0], chain.__getitem__, 1.0, 2,
                              lambda p: True) == [0, 1, 2]

    def test_draw_sequence_is_deterministic_and_minimal(self):
        """Each uninfected neighbor is offered the fault at most once per
        hop, in callback order, and infected nodes are never re-drawn."""
        draws = []

        def scripted(p):
            draws.append(p)
            return len(draws) % 2 == 1  # True, False, True, ...

        infected = expand_cascade([0], self.neighbors.__getitem__, 0.5, 2,
                                  scripted)
        # Hop 1: 0 offers to 1 (True) and 2 (False); hop 2: 1 offers to 2
        # (True).  Node 0 and node 1 are never re-drawn.
        assert infected == [0, 1, 2]
        assert draws == [0.5, 0.5, 0.5]

    def test_duplicate_seeds_are_folded(self):
        assert expand_cascade([1, 1, 0], self.neighbors.__getitem__, 0.0, 1,
                              lambda p: False) == [1, 0]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            expand_cascade([0], self.neighbors.__getitem__, 1.5, 1,
                           lambda p: True)
        with pytest.raises(ValueError):
            expand_cascade([0], self.neighbors.__getitem__, 0.5, -1,
                           lambda p: True)
