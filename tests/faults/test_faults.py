"""Unit tests for fault injection and contamination propagation."""

import pytest

from repro.core.history import HistoryDiagram
from repro.core.types import CheckpointKind
from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.propagation import contaminated_checkpoints, contamination_at


class TestFaultInjector:
    def test_timeline_is_sorted_and_bounded(self):
        injector = FaultInjector([0.5, 1.0], seed=1)
        events = injector.timeline(50.0)
        assert all(e.time < 50.0 for e in events)
        assert all(a.time <= b.time for a, b in zip(events, events[1:]))

    def test_rate_zero_process_never_fails(self):
        injector = FaultInjector([0.0, 2.0], seed=2)
        assert all(e.process == 1 for e in injector.timeline(100.0))

    def test_expected_count_matches_empirical(self):
        injector = FaultInjector([0.2, 0.3], seed=3)
        horizon = 400.0
        count = len(injector.timeline(horizon))
        assert count == pytest.approx(injector.expected_fault_count(horizon), rel=0.2)

    def test_first_fault(self):
        injector = FaultInjector([1.0], seed=4)
        first = injector.first_fault(100.0)
        assert first is not None and first.process == 0
        assert FaultInjector([1e-9], seed=5).first_fault(0.001) is None

    def test_reproducible(self):
        a = FaultInjector([1.0, 1.0], seed=9).timeline(20.0)
        b = FaultInjector([1.0, 1.0], seed=9).timeline(20.0)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector([])
        with pytest.raises(ValueError):
            FaultInjector([-1.0])
        with pytest.raises(ValueError):
            FaultEvent(time=-1.0, process=0)
        with pytest.raises(ValueError):
            FaultInjector([1.0]).timeline(0.0)


@pytest.fixture
def chain_history():
    """P1 -> P2 -> P3 message chain after a fault in P1."""
    history = HistoryDiagram(3)
    history.add_recovery_point(0, 1.0)
    history.add_recovery_point(1, 1.0)
    history.add_recovery_point(2, 1.0)
    history.add_interaction(0, 1, 3.0)
    history.add_recovery_point(1, 4.0, kind=CheckpointKind.PSEUDO, origin=(0, 1))
    history.add_interaction(1, 2, 5.0)
    history.add_recovery_point(2, 6.0)
    return history


class TestPropagation:
    def test_contamination_spreads_along_messages(self, chain_history):
        infected = contamination_at(chain_history, origin=0, fault_time=2.0, time=5.5)
        assert infected == {0, 1, 2}

    def test_contamination_respects_message_timing(self, chain_history):
        # A fault after the P1 -> P2 message never reaches the others.
        infected = contamination_at(chain_history, origin=0, fault_time=3.5, time=10.0)
        assert infected == {0}

    def test_contamination_before_query_time_only(self, chain_history):
        infected = contamination_at(chain_history, origin=0, fault_time=2.0, time=4.0)
        assert infected == {0, 1}

    def test_contaminated_checkpoints_flags_prp_after_infection(self, chain_history):
        bad = contaminated_checkpoints(chain_history, origin=0, fault_time=2.0)
        labels = {(rp.process, rp.kind) for rp in bad}
        # The PRP in P2 (taken at 4.0, after infection at 3.0) is contaminated, and
        # so is P3's RP at 6.0 (infection at 5.0).
        assert (1, CheckpointKind.PSEUDO) in labels
        assert (2, CheckpointKind.REGULAR) in labels
        # P2's clean RP at 1.0 is not.
        assert all(not (rp.process == 1 and rp.time == 1.0) for rp in bad)

    def test_clean_system_has_no_contaminated_checkpoints(self, chain_history):
        assert contaminated_checkpoints(chain_history, origin=2, fault_time=50.0) == []

    def test_invalid_arguments(self, chain_history):
        with pytest.raises(ValueError):
            contamination_at(chain_history, origin=9, fault_time=0.0, time=1.0)
        with pytest.raises(ValueError):
            contamination_at(chain_history, origin=0, fault_time=-1.0, time=1.0)
