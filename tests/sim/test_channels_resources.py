"""Unit tests for channels, routers and shared resources."""

import pytest

from repro.sim.channels import Channel, MessageRouter
from repro.sim.engine import SimulationEngine, Timeout
from repro.sim.resources import Resource


class TestChannel:
    def test_fifo_delivery_order(self):
        engine = SimulationEngine()
        channel = Channel(engine, 0, 1)
        received = []

        def receiver():
            for _ in range(3):
                message = yield channel.receive()
                received.append(message.payload)

        engine.launch(receiver())
        for payload in ("a", "b", "c"):
            channel.send(payload)
        engine.drain()
        assert received == ["a", "b", "c"]

    def test_latency_delays_delivery(self):
        engine = SimulationEngine()
        channel = Channel(engine, 0, 1, latency=2.5)
        deliveries = []
        channel.on_delivery(lambda message, when: deliveries.append(when))
        channel.send("x")
        engine.drain()
        assert deliveries == [2.5]

    def test_receive_before_send_blocks_until_delivery(self):
        engine = SimulationEngine()
        channel = Channel(engine, 0, 1)
        got = []

        def receiver():
            message = yield channel.receive()
            got.append((engine.now, message.payload))

        engine.launch(receiver())
        engine.schedule(4.0, channel.send, "late")
        engine.drain()
        assert got == [(4.0, "late")]

    def test_try_receive_and_pending(self):
        engine = SimulationEngine()
        channel = Channel(engine, 0, 1)
        channel.send("m")
        engine.drain()
        assert channel.pending == 1
        assert channel.try_receive().payload == "m"
        assert channel.try_receive() is None

    def test_drop_pending_filters_messages(self):
        engine = SimulationEngine()
        channel = Channel(engine, 0, 1)
        channel.send("keep")
        channel.send("drop", tainted=True)
        engine.drain()
        dropped = channel.drop_pending(lambda m: m.tainted)
        assert dropped == 1 and channel.pending == 1

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Channel(SimulationEngine(), 0, 1, latency=-1.0)


class TestMessageRouter:
    def test_channels_are_cached_per_ordered_pair(self):
        router = MessageRouter(SimulationEngine(), 3)
        assert router.channel(0, 1) is router.channel(0, 1)
        assert router.channel(0, 1) is not router.channel(1, 0)

    def test_rejects_self_channel_and_bad_ids(self):
        router = MessageRouter(SimulationEngine(), 2)
        with pytest.raises(ValueError):
            router.channel(1, 1)
        with pytest.raises(ValueError):
            router.channel(0, 5)

    def test_global_observer_sees_all_deliveries(self):
        engine = SimulationEngine()
        router = MessageRouter(engine, 3)
        seen = []
        router.on_delivery(lambda message, when: seen.append(message.pair()
                           if hasattr(message, "pair") else (message.source,
                                                             message.target)))
        router.send(0, 1, "x")
        router.send(2, 0, "y")
        engine.drain()
        assert len(seen) == 2

    def test_broadcast_reaches_everyone_else(self):
        engine = SimulationEngine()
        router = MessageRouter(engine, 4)
        messages = router.broadcast(1, "hello")
        engine.drain()
        assert sorted(m.target for m in messages) == [0, 2, 3]
        assert router.pending_for(0) == 1

    def test_observer_attached_before_channel_creation(self):
        engine = SimulationEngine()
        router = MessageRouter(engine, 2)
        seen = []
        router.on_delivery(lambda m, t: seen.append(m.payload))
        router.send(0, 1, "later-channel")
        engine.drain()
        assert seen == ["later-channel"]


class TestResource:
    def test_immediate_grant_within_capacity(self):
        engine = SimulationEngine()
        resource = Resource(engine, capacity=2)
        granted = []
        resource.request(owner=0).wait(lambda v, e: granted.append(0))
        resource.request(owner=1).wait(lambda v, e: granted.append(1))
        engine.drain()
        assert granted == [0, 1]
        assert resource.in_use == 2

    def test_fifo_queueing_and_release(self):
        engine = SimulationEngine()
        resource = Resource(engine, capacity=1)
        order = []

        def user(pid, hold):
            yield resource.request(owner=pid)
            order.append(("got", pid, engine.now))
            yield Timeout(hold)
            resource.release()

        engine.launch(user(0, 2.0))
        engine.launch(user(1, 1.0))
        engine.drain()
        assert order[0][1] == 0 and order[1][1] == 1
        assert order[1][2] == pytest.approx(2.0)
        assert resource.grants == 2

    def test_release_without_request_raises(self):
        with pytest.raises(RuntimeError):
            Resource(SimulationEngine(), capacity=1).release()

    def test_cancel_waiters(self):
        engine = SimulationEngine()
        resource = Resource(engine, capacity=1)
        resource.request(owner=0)
        resource.request(owner=1)
        resource.request(owner=1)
        engine.drain()
        assert resource.cancel_waiters(owner=1) == 2
        assert resource.queue_length == 0

    def test_utilisation_between_zero_and_one(self):
        engine = SimulationEngine()
        resource = Resource(engine, capacity=1)

        def user():
            yield resource.request(owner=0)
            yield Timeout(1.0)
            resource.release()
            yield Timeout(1.0)

        engine.launch(user())
        engine.drain()
        assert 0.0 < resource.utilisation() <= 1.0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Resource(SimulationEngine(), capacity=0)
