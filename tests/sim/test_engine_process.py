"""Unit tests for the discrete-event kernel and generator processes."""

import pytest

from repro.sim.engine import SimulationEngine, Timeout
from repro.sim.process import Interrupt, SimProcess


class TestEngineBasics:
    def test_clock_starts_at_zero(self):
        assert SimulationEngine().now == 0.0

    def test_callbacks_fire_in_time_order(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(2.0, lambda: seen.append("late"))
        engine.schedule(1.0, lambda: seen.append("early"))
        engine.drain()
        assert seen == ["early", "late"]
        assert engine.now == 2.0

    def test_ties_fire_in_insertion_order(self):
        engine = SimulationEngine()
        seen = []
        for tag in ("a", "b", "c"):
            engine.schedule(1.0, seen.append, tag)
        engine.drain()
        assert seen == ["a", "b", "c"]

    def test_cannot_schedule_in_the_past(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule(-0.1, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule_at(-1.0, lambda: None)

    def test_run_until_stops_before_later_events(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(5.0, lambda: seen.append(5))
        engine.run(until=2.0)
        assert seen == [1]
        assert engine.now == 2.0
        assert engine.pending_events == 1

    def test_cancelled_events_do_not_fire(self):
        engine = SimulationEngine()
        seen = []
        handle = engine.schedule(1.0, lambda: seen.append("x"))
        handle.cancel()
        engine.drain()
        assert seen == []

    def test_pending_events_excludes_cancelled(self):
        engine = SimulationEngine()
        live = engine.schedule(1.0, lambda: None)
        doomed = engine.schedule(2.0, lambda: None)
        assert engine.pending_events == 2
        doomed.cancel()
        # The cancelled entry is still in the heap (unpopped) but must not count.
        assert engine.pending_events == 1
        live.cancel()
        assert engine.pending_events == 0
        engine.drain()
        assert engine.pending_events == 0
        assert engine.processed_events == 0

    def test_processed_events_counter(self):
        engine = SimulationEngine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.drain()
        assert engine.processed_events == 5

    def test_max_events_limit(self):
        engine = SimulationEngine()
        for _ in range(10):
            engine.schedule(1.0, lambda: None)
        engine.run(max_events=3)
        assert engine.processed_events == 3


class TestSimEvent:
    def test_succeed_resumes_waiters(self):
        engine = SimulationEngine()
        event = engine.event("go")
        results = []
        event.wait(lambda value, exc: results.append(value))
        event.succeed(42)
        engine.drain()
        assert results == [42]

    def test_double_trigger_rejected(self):
        engine = SimulationEngine()
        event = engine.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_wait_after_trigger_fires_immediately(self):
        engine = SimulationEngine()
        event = engine.event()
        event.succeed("done")
        got = []
        event.wait(lambda value, exc: got.append(value))
        engine.drain()
        assert got == ["done"]


class TestSimProcess:
    def test_timeout_sequencing(self):
        engine = SimulationEngine()
        trace = []

        def proc():
            trace.append(engine.now)
            yield Timeout(1.5)
            trace.append(engine.now)
            yield Timeout(0.5)
            trace.append(engine.now)
            return "done"

        process = engine.launch(proc(), name="walker")
        engine.drain()
        assert trace == [0.0, 1.5, 2.0]
        assert process.finished and process.result == "done"

    def test_process_join(self):
        engine = SimulationEngine()

        def child():
            yield Timeout(2.0)
            return 7

        def parent():
            value = yield engine.launch(child())
            return value + 1

        parent_proc = engine.launch(parent())
        engine.drain()
        assert parent_proc.result == 8

    def test_event_wait_inside_process(self):
        engine = SimulationEngine()
        gate = engine.event("gate")

        def waiter():
            value = yield gate
            return value

        def opener():
            yield Timeout(3.0)
            gate.succeed("open")

        w = engine.launch(waiter())
        engine.launch(opener())
        engine.drain()
        assert w.result == "open"
        assert engine.now == 3.0

    def test_yielding_garbage_fails_process(self):
        engine = SimulationEngine()

        def bad():
            yield 42

        process = engine.launch(bad())
        engine.drain()
        assert process.failed

    def test_exception_propagates_to_result(self):
        engine = SimulationEngine()

        def boom():
            yield Timeout(1.0)
            raise RuntimeError("kaboom")

        process = engine.launch(boom())
        engine.drain()
        assert process.failed
        with pytest.raises(RuntimeError):
            _ = process.result

    def test_interrupt_wakes_waiting_process(self):
        engine = SimulationEngine()
        log = []

        def sleeper():
            try:
                yield Timeout(100.0)
                log.append("slept")
            except Interrupt as interrupt:
                log.append(f"interrupted:{interrupt.cause}")
            yield Timeout(1.0)
            return "after"

        process = engine.launch(sleeper())
        engine.schedule(2.0, process.interrupt, "rollback")
        engine.drain()
        assert log == ["interrupted:rollback"]
        assert process.result == "after"
        # The stale 100-unit timeout must not have dragged the clock out.
        assert engine.now == pytest.approx(3.0)

    def test_launch_requires_generator(self):
        engine = SimulationEngine()
        with pytest.raises(TypeError):
            SimProcess(engine, lambda: None)   # not a generator

    def test_result_before_finish_raises(self):
        engine = SimulationEngine()

        def proc():
            yield Timeout(1.0)

        process = engine.launch(proc())
        with pytest.raises(RuntimeError):
            _ = process.result
