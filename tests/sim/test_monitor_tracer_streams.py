"""Unit tests for monitors, tracers and random streams."""

import numpy as np
import pytest

from repro.core.types import CheckpointKind, EventKind
from repro.sim.monitor import Counter, Monitor, Tally, TimeWeightedStat
from repro.sim.random_streams import RandomStreams
from repro.sim.tracer import Tracer


class TestCounter:
    def test_increment(self):
        counter = Counter("x")
        counter.increment()
        counter.increment(3)
        assert counter.value == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)


class TestTally:
    def test_moments(self):
        tally = Tally("t")
        for value in (1.0, 2.0, 3.0):
            tally.observe(value)
        assert tally.count == 3
        assert tally.mean == pytest.approx(2.0)
        assert tally.maximum == 3.0

    def test_samples_only_when_requested(self):
        plain = Tally("plain")
        plain.observe(1.0)
        with pytest.raises(RuntimeError):
            _ = plain.samples
        keeping = Tally("keep", keep_samples=True)
        keeping.observe(1.0)
        assert keeping.samples == [1.0]


class TestTimeWeightedStat:
    def test_time_average_of_step_function(self):
        level = TimeWeightedStat("load", initial=0.0)
        level.update(2.0, 4.0)     # 0 for [0,2)
        level.update(6.0, 0.0)     # 4 for [2,6)
        assert level.time_average(8.0) == pytest.approx((0 * 2 + 4 * 4 + 0 * 2) / 8)
        assert level.maximum == 4.0

    def test_add_delta(self):
        level = TimeWeightedStat("load", initial=1.0)
        level.add(1.0, +2.0)
        assert level.current == 3.0

    def test_time_must_not_regress(self):
        level = TimeWeightedStat()
        level.update(2.0, 1.0)
        with pytest.raises(ValueError):
            level.update(1.0, 0.0)


class TestMonitor:
    def test_named_instruments_are_cached(self):
        monitor = Monitor()
        assert monitor.counter("a") is monitor.counter("a")
        assert monitor.tally("b") is monitor.tally("b")
        assert monitor.level("c") is monitor.level("c")

    def test_report_flattens_everything(self):
        monitor = Monitor()
        monitor.counter("events").increment(2)
        monitor.tally("distance").observe(1.5)
        monitor.level("states").update(1.0, 3.0)
        report = monitor.report(now=2.0)
        assert report["count.events"] == 2.0
        assert report["mean.distance"] == 1.5
        assert "avg.states" in report


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(7).stream("x").random(5)
        assert np.allclose(a, b)

    def test_different_names_are_independent(self):
        streams = RandomStreams(7)
        assert not np.allclose(streams.stream("x").random(5),
                               streams.stream("y").random(5))

    def test_consuming_one_stream_does_not_shift_another(self):
        reference = RandomStreams(3).stream("b").random(4)
        streams = RandomStreams(3)
        streams.stream("a").random(1000)
        assert np.allclose(streams.stream("b").random(4), reference)

    def test_exponential_mean(self):
        streams = RandomStreams(11)
        samples = [streams.exponential("e", 4.0) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(0.25, rel=0.1)

    def test_exponential_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            RandomStreams(1).exponential("e", 0.0)

    def test_bernoulli_probability(self):
        streams = RandomStreams(5)
        hits = sum(streams.bernoulli("coin", 0.25) for _ in range(4000))
        assert hits / 4000 == pytest.approx(0.25, abs=0.03)

    def test_choice_and_uniform(self):
        streams = RandomStreams(9)
        assert streams.choice("c", ["a", "b"]) in ("a", "b")
        assert 0.0 <= streams.uniform("u") <= 1.0

    def test_spawn_produces_independent_family(self):
        parent = RandomStreams(13)
        child = parent.spawn("replica-1")
        assert not np.allclose(parent.stream("x").random(3),
                               child.stream("x").random(3))


class TestTracer:
    def test_checkpoints_land_in_history_and_log(self):
        tracer = Tracer(2)
        rp = tracer.record_recovery_point(0, 1.0)
        prp = tracer.record_pseudo_recovery_point(1, 1.1, origin=(0, rp.index))
        assert tracer.history.checkpoint_count(0, CheckpointKind.REGULAR) == 1
        assert prp.origin == (0, rp.index)
        assert tracer.recovery_point_count(0) == 1
        assert tracer.log.count(EventKind.PSEUDO_RECOVERY_POINT) == 1

    def test_interactions_recorded_once(self):
        tracer = Tracer(2)
        tracer.record_interaction(0, 1, 2.0)
        assert tracer.interaction_count() == 1
        assert len(tracer.history.interactions) == 1

    def test_rollback_and_error_events(self):
        tracer = Tracer(2)
        tracer.record_error(0, 1.0)
        tracer.record_rollback(0, 2.0, restart_time=1.0, cause=0)
        assert tracer.rollback_count() == 1
        rollback = tracer.log.filter(kind=EventKind.ROLLBACK)[0]
        assert rollback.data["distance"] == pytest.approx(1.0)

    def test_sync_events_and_summary(self):
        tracer = Tracer(3)
        tracer.record_sync_request(0, 1.0)
        tracer.record_sync_commit(0, 1.5)
        tracer.record_recovery_line(2.0, (0, 1, 2))
        summary = tracer.summary()
        assert summary["sync_request"] == 1
        assert summary["recovery_line"] == 1
