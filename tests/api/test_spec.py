"""StudySpec/SystemSpec: canonical serialisation, keys, sweeps, validation."""

import json

import numpy as np
import pytest

from repro.api import StudySpec, SystemSpec
from repro.api.spec import EVALUATE_SCENARIO_NAME
from repro.report.store import ResultStore, store_key


def symmetric_spec(**overrides):
    fields = dict(system=SystemSpec.symmetric(4, 1.0, 0.5),
                  metrics=("mean", "std"), reps=2000, seed=11)
    fields.update(overrides)
    return StudySpec(**fields)


class TestSystemSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown system kind"):
            SystemSpec("pentagonal", {"n": 5})

    def test_missing_and_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            SystemSpec("symmetric", {"n": 3, "mu": 1.0})
        with pytest.raises(ValueError, match="does not take"):
            SystemSpec("symmetric", {"n": 3, "mu": 1.0, "lam": 1.0, "rho": 2})

    def test_builders_match_direct_parameters(self):
        from repro.core.parameters import SystemParameters
        built = SystemSpec.symmetric(3, 1.0, 2.0).build()
        direct = SystemParameters.symmetric(3, 1.0, 2.0)
        np.testing.assert_array_equal(built.mu, direct.mu)
        np.testing.assert_array_equal(built.lam, direct.lam)

    def test_table1_case_builds_paper_case(self):
        from repro.workloads.generators import paper_table1_case
        built = SystemSpec.table1_case(2).build()
        direct = paper_table1_case(2)
        np.testing.assert_array_equal(built.mu, direct.mu)
        np.testing.assert_array_equal(built.lam, direct.lam)

    def test_explicit_round_trips_arbitrary_parameters(self):
        from repro.experiments.heterogeneous_sweep import heterogeneous_parameters
        params = heterogeneous_parameters(4, mu_gradient=2.0)
        rebuilt = SystemSpec.explicit(params).build()
        np.testing.assert_array_equal(rebuilt.mu, params.mu)
        np.testing.assert_array_equal(rebuilt.lam, params.lam)

    def test_numeric_normalisation(self):
        a = SystemSpec("symmetric", {"n": 3, "mu": 1, "lam": 2})
        b = SystemSpec("symmetric", {"n": np.int64(3), "mu": np.float64(1.0),
                                     "lam": 2.0})
        assert a.to_dict() == b.to_dict()


class TestCanonicalKey:
    def test_dict_ordering_invariance(self):
        a = StudySpec.from_dict({"system": {"kind": "symmetric", "n": 4,
                                            "mu": 1.0, "lam": 0.5},
                                 "metrics": ["mean", "std"],
                                 "reps": 2000, "seed": 11})
        b = StudySpec.from_dict(json.loads(json.dumps(
            {"seed": 11, "reps": 2000, "metrics": ["mean", "std"],
             "system": {"lam": 0.5, "mu": 1.0, "n": 4,
                        "kind": "symmetric"}})))
        assert a.canonical_key("mc") == b.canonical_key("mc")

    def test_float_formatting_invariance(self):
        a = symmetric_spec(system=SystemSpec.symmetric(4, 1.0, 5e-1))
        b = symmetric_spec(system=SystemSpec.symmetric(4, 1, 0.50))
        c = symmetric_spec(system=SystemSpec.symmetric(4, np.float64(1.0),
                                                       np.float64(0.5)))
        assert a.canonical_key() == b.canonical_key() == c.canonical_key()

    def test_tuple_list_invariance(self):
        a = StudySpec(system=SystemSpec("three_process",
                                        {"mu": (1.0, 1.0, 1.0),
                                         "lam_12_23_31": (1.0, 1.0, 1.0)}))
        b = StudySpec(system=SystemSpec("three_process",
                                        {"mu": [1, 1, 1],
                                         "lam_12_23_31": [1, 1, 1]}))
        assert a.canonical_key() == b.canonical_key()

    def test_survives_json_round_trip(self):
        spec = symmetric_spec(times=(0.5, 1.0), metrics=("mean", "cdf"))
        rebuilt = StudySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.canonical_key("mc") == spec.canonical_key("mc")
        assert rebuilt.to_dict() == spec.to_dict()

    def test_equals_result_store_key(self, tmp_path):
        """The spec's own key is the store's cell key (cache hits survive)."""
        spec = symmetric_spec()
        store = ResultStore(str(tmp_path / "store"))
        assert spec.canonical_key("mc") == store.key(
            EVALUATE_SCENARIO_NAME, spec.cell_params("mc"), spec.seed,
            spec.effective_reps())
        assert spec.canonical_key("analytic") == store.key(
            EVALUATE_SCENARIO_NAME, spec.cell_params("analytic"), spec.seed,
            None)
        # ... and direct store_key agreement, version included.
        assert spec.canonical_key("mc") == store_key(
            EVALUATE_SCENARIO_NAME, spec.cell_params("mc"), 11, 2000)

    def test_auto_resolves_to_same_cell_as_explicit_engine(self):
        spec = symmetric_spec()      # n=4 → auto resolves analytic
        assert spec.canonical_key("auto") == spec.canonical_key("analytic")

    def test_identity_components_change_the_key(self):
        base = symmetric_spec()
        assert symmetric_spec(seed=12).canonical_key() != base.canonical_key()
        assert symmetric_spec(metrics=("mean",)).canonical_key() \
            != base.canonical_key()
        assert symmetric_spec(
            system=SystemSpec.symmetric(5, 1.0, 0.5)).canonical_key() \
            != base.canonical_key()
        # reps only matters for stochastic engines
        assert symmetric_spec(reps=4000).canonical_key("mc") \
            != base.canonical_key("mc")
        assert symmetric_spec(reps=4000).canonical_key("analytic") \
            == base.canonical_key("analytic")


class TestStudySpecValidation:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metrics"):
            symmetric_spec(metrics=("mean", "kurtosis"))

    def test_distribution_metrics_need_times(self):
        with pytest.raises(ValueError, match="times"):
            symmetric_spec(metrics=("pdf",))

    def test_bad_counting_rejected(self):
        with pytest.raises(ValueError, match="counting"):
            symmetric_spec(counting="every-other")

    def test_unknown_option_rejected(self):
        # Options route the engines AND enter the store identity, so a
        # typo'd key must fail loudly instead of being silently ignored.
        with pytest.raises(ValueError, match="unknown options"):
            symmetric_spec(options={"prefer_simplifed": False})

    def test_rel_tol_not_part_of_the_identity(self):
        a = symmetric_spec(rel_tol=0.05)
        b = symmetric_spec(rel_tol=0.01)
        assert a.canonical_key("mc") == b.canonical_key("mc")

    def test_specs_are_hashable_and_equal_hashes(self):
        a = symmetric_spec(sweep={"lam": (0.5, 1.0)})
        b = symmetric_spec(sweep={"lam": (0.5, 1.0)})
        assert hash(a) == hash(b) and a == b
        assert len({a, b}) == 1
        assert hash(a.system) == hash(b.system)

    def test_direct_evaluator_use_honours_the_spec_seed(self):
        from repro.api import get_evaluator
        spec = symmetric_spec(reps=400, seed=21)
        first = get_evaluator("mc").evaluate(spec)
        second = get_evaluator("mc").evaluate(spec)
        assert first.to_dict() == second.to_dict()
        assert hash(first) == hash(second)

    def test_rel_tol_reaches_the_evaluation(self):
        from repro.api import evaluate
        spec = symmetric_spec(reps=200, rel_tol=0.2)
        assert evaluate(spec, method="mc").rel_tol == 0.2
        assert evaluate(spec, method="analytic").rel_tol == 0.2

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(ValueError, match="unknown StudySpec fields"):
            StudySpec.from_dict({"system": {"kind": "symmetric", "n": 3,
                                            "mu": 1.0, "lam": 1.0},
                                 "replications": 10})

    def test_sweep_spec_has_no_single_cell_identity(self):
        spec = symmetric_spec(sweep={"lam": (0.5, 1.0)})
        with pytest.raises(ValueError, match="sweep"):
            spec.cell_params("analytic")


class TestSweepCells:
    def test_cross_product_order_is_deterministic(self):
        spec = symmetric_spec(sweep={"lam": (0.5, 1.0), "n": (3, 4)})
        cells = list(spec.cells())
        assert len(cells) == spec.cell_count() == 4
        combos = [(c.system.args["lam"], c.system.args["n"]) for c in cells]
        assert combos == [(0.5, 3), (0.5, 4), (1.0, 3), (1.0, 4)]
        assert all(not c.is_sweep for c in cells)

    def test_cell_order_survives_json_round_trip(self):
        # Axis order is canonical (name-sorted), so a spec written with
        # axes in any insertion order enumerates like its JSON round trip.
        spec = symmetric_spec(sweep={"n": (3, 4), "lam": (0.5, 1.0)})
        rebuilt = StudySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        order = [(c.system.args["lam"], c.system.args["n"])
                 for c in spec.cells()]
        assert order == [(c.system.args["lam"], c.system.args["n"])
                         for c in rebuilt.cells()]

    def test_reps_and_seed_axes(self):
        spec = symmetric_spec(sweep={"reps": (100, 200), "seed": (1, 2)})
        cells = list(spec.cells())
        assert [(c.reps, c.seed) for c in cells] == \
            [(100, 1), (100, 2), (200, 1), (200, 2)]

    def test_unknown_axis_rejected(self):
        spec = symmetric_spec(sweep={"rho": (1.0,)})
        with pytest.raises(ValueError, match="sweep axis"):
            list(spec.cells())
