"""The three engines: cross-agreement, determinism, capability limits."""

import numpy as np
import pytest

from repro.api import (
    StudySpec,
    SystemSpec,
    UnsupportedMetricError,
    evaluate,
    get_evaluator,
    resolve_method,
)
from repro.api.evaluators import AUTO_FULL_CHAIN_MAX_N


class TestThreeWayAgreement:
    """Acceptance criterion: for a symmetric n=5 system, the analytic, mc
    and des engines agree on mean/variance within the stated tolerances."""

    SPEC = StudySpec(system=SystemSpec.symmetric(5, 1.0, 0.5),
                     metrics=("mean", "variance", "std", "rp_counts",
                              "completion_probabilities"),
                     reps=12_000, seed=2024, rel_tol=0.05)

    @pytest.fixture(scope="class")
    def evaluations(self):
        return {m: evaluate(self.SPEC, method=m)
                for m in ("analytic", "mc", "des")}

    def test_means_agree_within_tolerance(self, evaluations):
        exact = evaluations["analytic"]
        for method in ("mc", "des"):
            stochastic = evaluations[method]
            rel = abs(stochastic.mean - exact.mean) / exact.mean
            assert rel < self.SPEC.rel_tol, (method, rel)
            assert exact.agrees_with(stochastic)
            # ... and the error is statistically plausible: within 5 sigma.
            assert abs(stochastic.mean - exact.mean) < 5 * stochastic.stderr

    def test_variances_agree_within_tolerance(self, evaluations):
        exact = evaluations["analytic"].metrics["variance"]
        for method in ("mc", "des"):
            est = evaluations[method].metrics["variance"]
            assert abs(est - exact) / exact < 0.15, method

    def test_rp_counts_and_q_agree(self, evaluations):
        exact_counts = np.asarray(evaluations["analytic"].rp_counts)
        exact_q = np.asarray(
            evaluations["analytic"].completion_probabilities)
        np.testing.assert_allclose(exact_q, 0.2, atol=1e-9)  # symmetric
        for method in ("mc", "des"):
            counts = np.asarray(evaluations[method].rp_counts)
            q = np.asarray(evaluations[method].completion_probabilities)
            np.testing.assert_allclose(counts, exact_counts, rtol=0.06)
            np.testing.assert_allclose(q, exact_q, atol=0.02)

    def test_stochastic_metadata(self, evaluations):
        assert evaluations["analytic"].n_samples is None
        for method in ("mc", "des"):
            assert evaluations[method].n_samples == 12_000
            assert evaluations[method].stderr > 0.0


class TestKnownValues:
    def test_table1_case1_mean(self):
        spec = StudySpec(system=SystemSpec.table1_case(1), metrics=("mean",),
                         options={"prefer_simplified": False})
        assert evaluate(spec, method="analytic").mean == pytest.approx(2.5)

    def test_cdf_grid_matches_model(self):
        from repro.markov.recovery_line_interval import RecoveryLineIntervalModel
        from repro.workloads.generators import paper_table1_case
        times = (0.5, 1.0, 2.0)
        spec = StudySpec(system=SystemSpec.table1_case(1),
                         metrics=("pdf", "cdf", "sf"), times=times,
                         options={"prefer_simplified": False})
        evaluation = evaluate(spec, method="analytic")
        model = RecoveryLineIntervalModel(paper_table1_case(1),
                                          prefer_simplified=False)
        grid = np.asarray(times)
        np.testing.assert_array_equal(evaluation.distributions["cdf"],
                                      np.asarray(model.cdf(grid)))
        np.testing.assert_array_equal(evaluation.distributions["pdf"],
                                      np.asarray(model.pdf(grid)))

    def test_empirical_cdf_converges(self):
        spec = StudySpec(system=SystemSpec.table1_case(1), metrics=("cdf",),
                         times=(1.0, 2.5, 5.0), reps=8000, seed=3)
        exact = evaluate(StudySpec(system=SystemSpec.table1_case(1),
                                   metrics=("cdf",), times=(1.0, 2.5, 5.0),
                                   options={"prefer_simplified": False}),
                         method="analytic")
        mc = evaluate(spec, method="mc")
        np.testing.assert_allclose(mc.distributions["cdf"],
                                   exact.distributions["cdf"], atol=0.02)


class TestDesSampler:
    def test_same_seed_is_bit_identical(self):
        from repro.sim.interval_sampler import DESIntervalSampler
        from repro.core.parameters import SystemParameters
        params = SystemParameters.symmetric(3, 1.0, 1.0)
        a = DESIntervalSampler(params, seed=42).sample_intervals(200)
        b = DESIntervalSampler(params, seed=42).sample_intervals(200)
        np.testing.assert_array_equal(a.lengths, b.lengths)
        np.testing.assert_array_equal(a.rp_counts, b.rp_counts)
        np.testing.assert_array_equal(a.completing_process,
                                      b.completing_process)

    def test_counts_are_consistent_with_lengths(self):
        from repro.sim.interval_sampler import DESIntervalSampler
        from repro.core.parameters import SystemParameters
        params = SystemParameters.symmetric(3, 1.0, 1.0)
        sample = DESIntervalSampler(params, seed=7).sample_intervals(500)
        assert sample.n_samples == 500
        assert (sample.lengths > 0).all()
        # Every interval ends with the completing process's RP: >= 1 count.
        rows = np.arange(500)
        assert (sample.rp_counts[rows, sample.completing_process] >= 1).all()

    def test_no_interactions_reduces_to_pooled_exponential(self):
        from repro.sim.interval_sampler import DESIntervalSampler
        from repro.core.parameters import SystemParameters
        # With lam = 0 no bits are ever cleared, so every recovery point
        # completes a line: X ~ Exp(n mu) (the chain's direct R4 transition).
        params = SystemParameters.symmetric(2, 2.0, 0.0)
        sample = DESIntervalSampler(params, seed=5).sample_intervals(4000)
        assert sample.mean_interval() == pytest.approx(0.25, rel=0.05)


class TestAnalyticPrecisionGuard:
    def test_overflowed_solve_raises_instead_of_returning_garbage(self):
        # n=30 at per-pair lam=0.5 puts E[X] past float64: the lumped solve
        # returns a negative mean, which must surface as an error.
        spec = StudySpec(system=SystemSpec.symmetric(30, 1.0, 0.5),
                         metrics=("mean",))
        with pytest.raises(ArithmeticError, match="lost precision"):
            evaluate(spec, method="analytic")

    def test_realistic_large_n_still_fine(self):
        # rho ~ 1 stays well inside range even at n=40.
        spec = StudySpec(system=SystemSpec.symmetric(40, 1.0,
                                                     40 / (40 * 39)),
                         metrics=("mean",))
        evaluation = evaluate(spec, method="analytic")
        assert evaluation.backend == "lumped"
        assert 0.0 < evaluation.mean < 1e12


class TestMethodResolution:
    def test_auto_small_system_is_analytic(self):
        spec = StudySpec(system=SystemSpec.symmetric(5, 1.0, 1.0))
        assert resolve_method(spec) == "analytic"

    def test_auto_large_symmetric_moments_stay_analytic(self):
        spec = StudySpec(system=SystemSpec.symmetric(
            AUTO_FULL_CHAIN_MAX_N + 6, 1.0, 0.1), metrics=("mean", "std"))
        assert resolve_method(spec) == "analytic"

    def test_auto_large_symmetric_forced_full_chain_goes_mc(self):
        # options forcing the full chain disqualify the lumped shortcut:
        # auto must not hand the analytic engine a 2^n-state build.
        spec = StudySpec(system=SystemSpec.symmetric(
            AUTO_FULL_CHAIN_MAX_N + 6, 1.0, 0.1), metrics=("mean",),
            options={"prefer_simplified": False})
        assert resolve_method(spec) == "mc"

    def test_auto_large_with_counts_goes_mc(self):
        spec = StudySpec(system=SystemSpec.symmetric(
            AUTO_FULL_CHAIN_MAX_N + 6, 1.0, 0.1),
            metrics=("mean", "rp_counts"))
        assert resolve_method(spec) == "mc"

    def test_auto_large_heterogeneous_goes_mc(self):
        spec = StudySpec(system=SystemSpec.heterogeneous(
            AUTO_FULL_CHAIN_MAX_N + 6, mu_gradient=2.0))
        assert resolve_method(spec) == "mc"

    def test_auto_large_pdf_is_an_error(self):
        spec = StudySpec(system=SystemSpec.heterogeneous(
            AUTO_FULL_CHAIN_MAX_N + 6, mu_gradient=2.0),
            metrics=("pdf",), times=(1.0,))
        with pytest.raises(UnsupportedMetricError):
            resolve_method(spec)

    def test_stochastic_engines_reject_pdf(self):
        spec = StudySpec(system=SystemSpec.symmetric(3, 1.0, 1.0),
                         metrics=("pdf",), times=(1.0,))
        for method in ("mc", "des"):
            with pytest.raises(UnsupportedMetricError):
                resolve_method(spec, method)

    def test_unknown_method_lists_known(self):
        spec = StudySpec(system=SystemSpec.symmetric(3, 1.0, 1.0))
        with pytest.raises(KeyError, match="analytic"):
            resolve_method(spec, "quantum")

    def test_registry_lookup(self):
        assert get_evaluator("analytic").name == "analytic"
        assert get_evaluator("mc").stochastic
        assert get_evaluator("des").stochastic
        assert not get_evaluator("analytic").stochastic
