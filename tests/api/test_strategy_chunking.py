"""Replication chunking of the strategy engine: bit-identity and layout.

The chunked task layout (several replications per :class:`StrategyTask`)
must be invisible in the results: per-replication seeds and reduction order
are exactly those of the historical one-task-per-replication layout, for
every chunk size and backend, and the store identity ignores the chunk
size entirely.  These tests pin that contract, plus the empty-spec
regression of ``cell_tasks``.
"""

import pytest

from repro.api import StudySpec, evaluate, evaluate_record
from repro.api.evaluators import get_evaluator
from repro.api.facade import evaluate_in_context
from repro.api.strategy import DEFAULT_REP_CHUNK, StrategyEvaluator
from repro.runner import ExecutionContext


def strategy_payload(**overrides):
    payload = {
        "system": {"kind": "strategy", "scheme": "asynchronous", "n": 3,
                   "mu": 1.0, "lam": 1.0, "work": 10.0, "error_rate": 0.05,
                   "sync_interval": 2.0},
        "metrics": ["makespan", "rollbacks", "total_saves"],
        "reps": 5,
        "seed": 99,
    }
    payload.update(overrides)
    return payload


def with_chunk(payload, chunk):
    return {**payload, "options": {"rep_chunk": chunk}}


class TestChunkedBitIdentity:
    """Chunked == one-task-per-replication, float for float."""

    def test_serial_equality_across_chunk_sizes(self):
        reference = evaluate(StudySpec.from_dict(
            strategy_payload()), method="strategy").to_dict()
        for chunk in (1, 2, 3, 5, 64):
            spec = StudySpec.from_dict(
                with_chunk(strategy_payload(), chunk))
            assert evaluate(spec, method="strategy").to_dict() == reference, \
                f"rep_chunk={chunk} changed the results"

    def test_process_pool_equality(self):
        serial = evaluate(StudySpec.from_dict(strategy_payload()),
                          method="strategy")
        pooled = evaluate(StudySpec.from_dict(strategy_payload()),
                          method="strategy", backend="process", workers=2)
        unchunked_pooled = evaluate(
            StudySpec.from_dict(with_chunk(strategy_payload(), 1)),
            method="strategy", backend="process", workers=2)
        assert serial.to_dict() == pooled.to_dict()
        assert serial.to_dict() == unchunked_pooled.to_dict()

    def test_common_random_numbers_sweep_equality(self):
        """The CRN cell_tasks path is chunk-size independent too."""
        sweep = strategy_payload(
            sweep={"scheme": ["asynchronous", "synchronized", "pseudo"]})
        ctx_seed = StudySpec.from_dict(sweep).seed

        def run(chunk):
            payload = with_chunk(sweep, chunk) if chunk else sweep
            cells = list(StudySpec.from_dict(payload).cells())
            evaluations = evaluate_in_context(
                ExecutionContext(seed=ctx_seed), cells, method="strategy")
            return [e.to_dict() for e in evaluations]

        reference = run(None)           # DEFAULT_REP_CHUNK
        assert run(1) == reference
        assert run(2) == reference


class TestStoreIdentity:
    """The chunk size tunes execution, never the cell's cache address."""

    def test_canonical_key_ignores_rep_chunk(self):
        base = StudySpec.from_dict(strategy_payload())
        chunked = StudySpec.from_dict(with_chunk(strategy_payload(), 1))
        assert base.canonical_key("strategy") == \
            chunked.canonical_key("strategy")

    def test_store_hit_across_chunk_sizes(self, tmp_path):
        from repro.report import ResultStore
        store = ResultStore(str(tmp_path / "store"))
        first = evaluate_record(
            StudySpec.from_dict(with_chunk(strategy_payload(), 1)),
            method="strategy", store=store)
        rerun = evaluate_record(
            StudySpec.from_dict(with_chunk(strategy_payload(), 3)),
            method="strategy", store=store)
        assert first.cache_hits == 0
        assert rerun.cache_hits == 1
        assert [c.evaluation.to_dict() for c in rerun.cells] == \
            [c.evaluation.to_dict() for c in first.cells]


class TestTaskLayout:
    def test_chunk_layout_is_budget_only(self):
        """Chunk count = ceil(reps / rep_chunk), independent of backend."""
        spec = StudySpec.from_dict(strategy_payload(reps=20))
        evaluator = get_evaluator("strategy")
        tasks = evaluator.tasks(spec, ExecutionContext(seed=spec.seed))
        assert [len(t.seeds) for t in tasks] == [8, 8, 4]
        seeds = [s for t in tasks for s in t.seeds]
        per_rep = evaluator.tasks(
            StudySpec.from_dict(with_chunk(strategy_payload(reps=20), 1)),
            ExecutionContext(seed=spec.seed))
        assert [s for t in per_rep for s in t.seeds] == seeds

    def test_chunks_never_span_cells(self):
        sweep = strategy_payload(
            reps=3, sweep={"scheme": ["asynchronous", "synchronized"]})
        cells = list(StudySpec.from_dict(sweep).cells())
        evaluator = get_evaluator("strategy")
        tasks, bounds = evaluator.cell_tasks(cells,
                                             ExecutionContext(seed=99))
        assert bounds == [0, 1, 2]      # 3 reps fit one chunk per cell
        # Common random numbers: both cells carry the same seed slice.
        assert tasks[0].seeds == tasks[1].seeds

    def test_invalid_rep_chunk_rejected(self):
        spec = StudySpec.from_dict(with_chunk(strategy_payload(), 0))
        with pytest.raises(ValueError, match="rep_chunk must be >= 1"):
            get_evaluator("strategy").tasks(spec,
                                            ExecutionContext(seed=1))


class TestEmptySpecsRegression:
    """cell_tasks([]) used to die on a bare max() over no budgets."""

    def test_empty_cell_tasks(self):
        evaluator = StrategyEvaluator()
        tasks, bounds = evaluator.cell_tasks([], ExecutionContext(seed=7))
        assert tasks == []
        assert bounds == [0]

    def test_empty_evaluate_in_context(self):
        assert evaluate_in_context(ExecutionContext(seed=7), [],
                                   method="strategy") == []

    def test_default_chunk_is_sane(self):
        assert DEFAULT_REP_CHUNK >= 1
