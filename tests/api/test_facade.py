"""The facade: store round trips, sweeps, in-context layout, CLI faces."""

import json
import os

import numpy as np
import pytest

from repro.api import (
    Evaluation,
    StudySpec,
    SystemSpec,
    evaluate,
    evaluate_in_context,
    evaluate_record,
)
from repro.report import ResultStore
from repro.runner import ExecutionContext, ExperimentRunner


def spec_n4(**overrides):
    fields = dict(system=SystemSpec.symmetric(4, 1.0, 1.0),
                  metrics=("mean", "std"), reps=1500, seed=11)
    fields.update(overrides)
    return StudySpec(**fields)


class TestEvaluationRoundTrip:
    def test_experiment_result_encoding_is_exact(self):
        evaluation = evaluate(spec_n4(metrics=("mean", "std", "rp_counts",
                                               "completion_probabilities",
                                               "cdf"),
                                      times=(0.5, 1.0)), method="mc")
        rebuilt = Evaluation.from_experiment_result(
            evaluation.to_experiment_result())
        assert rebuilt.to_dict() == evaluation.to_dict()
        assert rebuilt == evaluation

    def test_dict_round_trip(self):
        evaluation = evaluate(spec_n4(), method="analytic")
        assert Evaluation.from_dict(
            json.loads(json.dumps(evaluation.to_dict()))) == evaluation

    def test_mean_present_even_when_not_requested(self):
        for method in ("analytic", "mc"):
            evaluation = evaluate(spec_n4(metrics=("rp_counts",), reps=300),
                                  method=method)
            assert evaluation.mean > 0.0, method


class TestStoreIntegration:
    def test_cache_hit_reproduces_evaluation(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        spec = spec_n4()
        fresh = evaluate_record(spec, method="mc", store=store)
        again = evaluate_record(spec, method="mc", store=store)
        assert not fresh.cells[0].cached and again.cells[0].cached
        assert again.cells[0].evaluation == fresh.cells[0].evaluation

    def test_cell_key_is_canonical_key(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        spec = spec_n4()
        record = evaluate_record(spec, method="mc", store=store)
        assert record.cells[0].key == spec.canonical_key("mc")
        assert store.get(spec.canonical_key("mc")) is not None

    def test_auto_and_explicit_share_a_cell(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        evaluate(spec_n4(), method="auto", store=store)   # resolves analytic
        again = evaluate_record(spec_n4(), method="analytic", store=store)
        assert again.cells[0].cached

    def test_seedless_stochastic_specs_bypass_the_store(self, tmp_path):
        # seed=None means fresh entropy for a sampler: never cached.
        store = ResultStore(str(tmp_path / "store"))
        spec = spec_n4(seed=None, reps=300)
        record = evaluate_record(spec, method="mc", store=store)
        assert record.cells[0].key is None
        assert len(store) == 0

    def test_seedless_analytic_specs_do_cache(self, tmp_path):
        # ... but a deterministic engine's result does not depend on the
        # seed, so seedless analytic cells cache under canonical_key.
        store = ResultStore(str(tmp_path / "store"))
        spec = spec_n4(seed=None)
        fresh = evaluate_record(spec, method="analytic", store=store)
        assert not fresh.cells[0].cached
        assert fresh.cells[0].key == spec.canonical_key("analytic")
        again = evaluate_record(spec, method="analytic", store=store)
        assert again.cells[0].cached
        assert again.cells[0].evaluation == fresh.cells[0].evaluation


class TestSweeps:
    def test_sweep_evaluates_every_cell(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        sweep = spec_n4(sweep={"lam": (0.5, 1.0), "n": (3, 4)})
        result = evaluate(sweep, method="analytic", store=store)
        assert len(result.cells) == 4
        table = result.to_experiment_result()
        assert len(table.rows) == 4
        assert "lam=0.5, n=3 [analytic]" in [r.label for r in table.rows]
        # resume: everything cached on the second pass
        assert evaluate(sweep, method="analytic",
                        store=store).cache_hits == 4

    def test_analytic_sweep_identical_across_backends(self):
        sweep = spec_n4(metrics=("mean",), sweep={"lam": (0.5, 1.0, 2.0)})
        serial = evaluate(sweep, method="analytic")
        pooled = evaluate(sweep, method="analytic", backend="process",
                          workers=2)
        assert [c.evaluation.to_dict() for c in serial.cells] == \
            [c.evaluation.to_dict() for c in pooled.cells]

    def test_cli_eval_reports_overflow_cleanly(self, tmp_path, capsys):
        from repro.__main__ import main
        spec_path = self.write_overflow_spec(tmp_path)
        with pytest.raises(SystemExit, match="evaluation failed"):
            main(["eval", spec_path, "--method", "analytic"])
        capsys.readouterr()

    @staticmethod
    def write_overflow_spec(tmp_path):
        payload = {"system": {"kind": "symmetric", "n": 30, "mu": 1.0,
                              "lam": 0.5}, "metrics": ["mean"]}
        path = tmp_path / "overflow.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_sweep_mean_matches_single_cells(self):
        sweep = spec_n4(metrics=("mean",), sweep={"lam": (0.5, 2.0)})
        result = evaluate(sweep, method="analytic")
        singles = [evaluate(spec_n4(metrics=("mean",),
                                    system=SystemSpec.symmetric(4, 1.0, lam)),
                            method="analytic").mean
                   for lam in (0.5, 2.0)]
        assert [c.evaluation.mean for c in result.cells] == singles


class TestInContextLayout:
    def test_matches_legacy_sampler_bit_for_bit(self):
        """The facade's mc task/seed layout is the pre-facade sampler's."""
        from repro.experiments.sampling import sample_interval_cases
        cases = [1, 2]
        legacy_ctx = ExecutionContext(seed=77, reps=None)
        legacy = sample_interval_cases(legacy_ctx, cases, 3000)

        facade_ctx = ExecutionContext(seed=77, reps=None)
        specs = [StudySpec(system=SystemSpec.table1_case(case),
                           metrics=("mean",), reps=3000) for case in cases]
        evaluations = evaluate_in_context(facade_ctx, specs, method="mc")
        for case, evaluation in zip(cases, evaluations):
            assert evaluation.mean == legacy[case].mean_interval()
            assert evaluation.stderr == legacy[case].interval_stderr()

    def test_mixed_engines_rejected(self):
        ctx = ExecutionContext(seed=1)
        specs = [StudySpec(system=SystemSpec.symmetric(3, 1.0, 1.0))]
        with pytest.raises(KeyError):
            evaluate_in_context(ctx, specs, method="nonsense")

    def test_deterministic_cells_fan_out(self):
        ctx = ExecutionContext(seed=1)
        specs = [StudySpec(system=SystemSpec.symmetric(n, 1.0, 1.0),
                           metrics=("mean",)) for n in (2, 3, 4)]
        means = [e.mean for e in evaluate_in_context(ctx, specs, "analytic")]
        assert means == sorted(means)  # E[X] grows with n


class TestEvaluateScenarioRegistration:
    def test_registered_but_internal(self):
        from repro.runner import (get_scenario, list_scenarios,
                                  load_builtin_scenarios)
        load_builtin_scenarios()
        spec = get_scenario("evaluate")
        assert spec.default_reps is None
        assert spec.internal
        # Generic enumeration must not sweep it up ...
        assert "evaluate" not in [s.name for s in list_scenarios()]
        # ... but it stays addressable when asked for explicitly.
        assert "evaluate" in [s.name
                              for s in list_scenarios(include_internal=True)]

    def test_runner_can_run_it_directly(self):
        runner = ExperimentRunner(seed=5)
        result = runner.run("evaluate",
                            spec=spec_n4(metrics=("mean",), seed=None,
                                         reps=None).to_dict(),
                            method="analytic")
        evaluation = Evaluation.from_experiment_result(result)
        assert evaluation.method == "analytic"

    def test_parameterless_invocation_is_informative(self):
        runner = ExperimentRunner(seed=5)
        with pytest.raises(ValueError, match="needs a StudySpec"):
            runner.run("evaluate")

    def test_payload_embedding_seed_or_reps_is_rejected(self):
        # The runner-level seed/reps slots key the cell; a payload carrying
        # its own would store self-contradictory provenance.
        runner = ExperimentRunner(seed=5)
        with pytest.raises(ValueError, match="must not embed"):
            runner.run("evaluate", spec=spec_n4().to_dict(),
                       method="analytic")

    def test_payload_embedding_sweep_is_rejected(self):
        # A sweep would silently collapse to its base cell here; the facade
        # expands sweeps before dispatch, so direct payloads must not carry
        # one.
        runner = ExperimentRunner(seed=5)
        payload = spec_n4(seed=None, reps=None,
                          sweep={"lam": (0.5, 1.0)}).to_dict()
        with pytest.raises(ValueError, match="must not embed"):
            runner.run("evaluate", spec=payload, method="analytic")

    def test_deterministic_same_identity_cells_computed_once(self, tmp_path):
        # A reps axis is identity-irrelevant to the analytic engine: all
        # three cells share one store cell and one solve.
        store = ResultStore(str(tmp_path / "store"))
        sweep = spec_n4(metrics=("mean",), sweep={"reps": (500, 1000, 2000)})
        result = evaluate(sweep, method="analytic", store=store)
        assert len(result.cells) == 3
        assert len({c.key for c in result.cells}) == 1
        assert len(store) == 1
        assert len({c.evaluation.mean for c in result.cells}) == 1
        # a single index line proves the solve (and write) happened once
        assert sum(1 for _ in store.records()) == 1

    def test_report_all_excludes_it(self):
        from repro.report.pipeline import default_scenario_order
        from repro.runner import list_scenarios, load_builtin_scenarios
        load_builtin_scenarios()
        names = default_scenario_order([s.name for s in list_scenarios()])
        assert "evaluate" not in names

    def test_report_rejects_it_explicitly(self, tmp_path):
        from repro.report import generate_report
        with pytest.raises(ValueError, match="internal"):
            generate_report(["evaluate"], out_dir=str(tmp_path))

    def test_cli_run_and_report_reject_it_cleanly(self, capsys):
        from repro.__main__ import main
        with pytest.raises(SystemExit, match="internal infrastructure"):
            main(["run", "evaluate"])
        with pytest.raises(SystemExit, match="internal infrastructure"):
            main(["report", "evaluate"])
        capsys.readouterr()

    def test_cli_list_hides_it(self, capsys):
        from repro.__main__ import main
        assert main(["list"]) == 0
        assert "evaluate" not in capsys.readouterr().out


class TestRowErrorMessages:
    def test_row_get_lists_columns(self):
        evaluation = evaluate(spec_n4(metrics=("mean",)), method="analytic")
        result = evaluation.to_experiment_result()
        with pytest.raises(KeyError, match="available columns: value"):
            result.rows[0].get("not-a-column")

    def test_result_row_lists_labels(self):
        evaluation = evaluate(spec_n4(metrics=("mean",)), method="analytic")
        result = evaluation.to_experiment_result()
        with pytest.raises(KeyError, match="known labels: 'mean'"):
            result.row("not-a-row")


class TestCli:
    def write_spec(self, tmp_path, payload=None):
        payload = payload or {
            "system": {"kind": "symmetric", "n": 4, "mu": 1.0, "lam": 1.0},
            "metrics": ["mean", "std"], "reps": 800, "seed": 9,
        }
        path = tmp_path / "study.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_eval_smoke_and_cache(self, tmp_path, capsys):
        from repro.__main__ import main
        spec_path = self.write_spec(tmp_path)
        store = str(tmp_path / "store")
        assert main(["eval", spec_path, "--method", "mc",
                     "--store", store]) == 0
        first = capsys.readouterr().out
        assert "0 served from the store" in first
        assert main(["eval", spec_path, "--method", "mc",
                     "--store", store]) == 0
        second = capsys.readouterr().out
        assert "1 served from the store" in second

    def test_eval_output_envelope(self, tmp_path, capsys):
        from repro.__main__ import main
        spec_path = self.write_spec(tmp_path)
        out = tmp_path / "evaluation.json"
        assert main(["eval", spec_path, "-o", str(out)]) == 0
        envelope = json.loads(out.read_text(encoding="utf-8"))
        assert envelope["method"] == "auto"
        assert envelope["evaluations"][0]["method"] == "analytic"
        capsys.readouterr()

    def test_eval_sweep_renders_table(self, tmp_path, capsys):
        from repro.__main__ import main
        spec_path = self.write_spec(tmp_path, {
            "system": {"kind": "symmetric", "n": 3, "mu": 1.0, "lam": 1.0},
            "metrics": ["mean"], "seed": 2,
            "sweep": {"lam": [0.5, 1.0]},
        })
        assert main(["eval", spec_path]) == 0
        out = capsys.readouterr().out
        assert "lam=0.5 [analytic]" in out and "2 cell(s)" in out

    def test_eval_rejects_bad_spec(self, tmp_path, capsys):
        from repro.__main__ import main
        spec_path = self.write_spec(tmp_path, {"metrics": ["mean"]})
        with pytest.raises(SystemExit, match="bad StudySpec"):
            main(["eval", spec_path])

    def test_eval_missing_file(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit, match="not found"):
            main(["eval", "/nonexistent/spec.json"])

    def test_eval_override_conflicting_with_sweep_axis_rejected(self, tmp_path):
        from repro.__main__ import main
        spec_path = self.write_spec(tmp_path, {
            "system": {"kind": "symmetric", "n": 3, "mu": 1.0, "lam": 1.0},
            "metrics": ["mean"], "seed": 2,
            "sweep": {"reps": [500, 1000]},
        })
        with pytest.raises(SystemExit, match="sweep axis"):
            main(["eval", spec_path, "--method", "mc", "--reps", "50"])

    def test_run_params_file(self, tmp_path, capsys):
        from repro.__main__ import main
        params = tmp_path / "kwargs.json"
        params.write_text(json.dumps({"n_values": [2, 3],
                                      "rho_values": [1.0]}),
                          encoding="utf-8")
        assert main(["run", "figure5", "--params", str(params)]) == 0
        out = capsys.readouterr().out
        assert "n=2" in out and "n=3" in out and "n=4" not in out

    def test_run_params_overridden_by_p(self, tmp_path, capsys):
        from repro.__main__ import main
        params = tmp_path / "kwargs.json"
        params.write_text(json.dumps({"n_values": [2, 3]}), encoding="utf-8")
        assert main(["run", "figure5", "--params", str(params),
                     "-p", "n_values=(2,)"]) == 0
        out = capsys.readouterr().out
        assert "n=2" in out and "n=3" not in out

    def test_run_params_rejects_non_object(self, tmp_path):
        from repro.__main__ import main
        params = tmp_path / "kwargs.json"
        params.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(SystemExit, match="JSON object"):
            main(["run", "figure5", "--params", str(params)])
