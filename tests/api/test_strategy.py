"""The strategy engine: spec validation, determinism, caching, CLI face."""

import json

import pytest

from repro.api import (
    Evaluation,
    StudySpec,
    SystemSpec,
    UnsupportedMetricError,
    evaluate,
    evaluate_in_context,
    evaluate_record,
    resolve_method,
)
from repro.report import ResultStore
from repro.runner import ExecutionContext


def strategy_spec(scheme="synchronized", **overrides):
    fields = dict(
        system=SystemSpec.strategy(scheme, 3, mu=1.0, lam=1.0, work=12.0,
                                   error_rate=0.04, sync_interval=2.0),
        metrics=("makespan", "slowdown", "rollbacks", "lost_work",
                 "sync_loss"),
        reps=3, seed=17)
    fields.update(overrides)
    return StudySpec(**fields)


class TestStrategySystemSpec:
    def test_defaults_are_applied_canonically(self):
        system = SystemSpec.strategy("pseudo", 4, mu=1.0, lam=0.5, work=20.0)
        assert system.args["mu_spread"] == 1.0
        assert system.args["checkpoint_cost"] == 0.02
        assert system.args["restart_cost"] == 0.05
        assert system.n == 4
        assert system.scheme == "pseudo"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="known schemes"):
            SystemSpec.strategy("optimistic", 3, mu=1.0, lam=1.0, work=10.0)

    def test_non_positive_spread_rejected(self):
        with pytest.raises(ValueError, match="must be positive"):
            SystemSpec.strategy("synchronized", 3, mu=1.0, lam=1.0,
                                work=10.0, mu_spread=0.0)

    def test_build_workload_matches_declared_axes(self):
        system = SystemSpec.strategy("asynchronous", 3, mu=2.0, lam=0.5,
                                     work=30.0, error_rate=0.1,
                                     checkpoint_cost=0.01, restart_cost=0.0)
        workload = system.build_workload()
        assert workload.n_processes == 3
        assert workload.work_per_process == 30.0
        assert workload.checkpoint_cost == 0.01
        assert workload.restart_cost == 0.0
        assert workload.faults.error_rate == 0.1
        assert float(workload.params.mu[0]) == 2.0
        assert float(workload.params.lam[0, 1]) == 0.5

    def test_interval_systems_declare_no_workload(self):
        with pytest.raises(ValueError, match="declares no workload"):
            SystemSpec.symmetric(3, 1.0, 1.0).build_workload()

    def test_interval_metrics_rejected_on_strategy_systems(self):
        with pytest.raises(ValueError, match="unknown metrics"):
            strategy_spec(metrics=("mean", "variance"))

    def test_strategy_metrics_rejected_on_interval_systems(self):
        with pytest.raises(ValueError, match="unknown metrics"):
            StudySpec(system=SystemSpec.symmetric(3, 1.0, 1.0),
                      metrics=("makespan",))


class TestMethodResolution:
    def test_auto_selects_strategy_for_measured_metrics(self):
        assert resolve_method(strategy_spec()) == "strategy"

    def test_auto_selects_analytic_for_closed_forms(self):
        spec = strategy_spec(metrics=("sync_loss", "expected_wait"))
        assert resolve_method(spec) == "analytic"

    def test_auto_measures_closed_form_metrics_of_other_schemes(self):
        spec = strategy_spec(scheme="asynchronous", metrics=("sync_loss",))
        assert resolve_method(spec) == "strategy"

    def test_samplers_reject_strategy_systems(self):
        for method in ("mc", "des"):
            with pytest.raises(UnsupportedMetricError, match="strategy"):
                resolve_method(strategy_spec(), method)

    def test_strategy_engine_rejects_interval_systems(self):
        spec = StudySpec(system=SystemSpec.symmetric(3, 1.0, 1.0),
                         metrics=("mean",))
        with pytest.raises(UnsupportedMetricError, match="'strategy' systems"):
            resolve_method(spec, "strategy")

    def test_analytic_rejects_unsynchronized_schemes(self):
        spec = strategy_spec(scheme="pseudo", metrics=("sync_loss",))
        with pytest.raises(UnsupportedMetricError, match="synchronized"):
            resolve_method(spec, "analytic")

    def test_strategy_engine_cannot_measure_expected_wait(self):
        spec = strategy_spec(metrics=("expected_wait",))
        with pytest.raises(UnsupportedMetricError, match="closed forms"):
            resolve_method(spec, "strategy")


class TestDeterminism:
    """Same seed ⇒ bit-identical evaluations, whatever the backend."""

    def test_serial_process_bit_identical(self):
        spec = strategy_spec()
        serial = evaluate(spec, method="strategy")
        pooled = evaluate(spec, method="strategy", backend="process",
                          workers=2)
        assert serial.to_dict() == pooled.to_dict()

    def test_rerun_bit_identical(self):
        spec = strategy_spec()
        assert evaluate(spec, method="strategy").to_dict() == \
            evaluate(spec, method="strategy").to_dict()

    def test_scheme_sweep_bit_identical_across_backends(self):
        sweep = strategy_spec(
            sweep={"scheme": ("asynchronous", "synchronized", "pseudo")})
        serial = evaluate_record(sweep, method="strategy")
        pooled = evaluate_record(sweep, method="strategy",
                                 backend="process", workers=2)
        assert [c.evaluation.to_dict() for c in serial.cells] == \
            [c.evaluation.to_dict() for c in pooled.cells]

    def test_common_random_numbers_across_cells(self):
        """In-context cells share the replication seed block (CRN layout)."""
        ctx = ExecutionContext(seed=5)
        specs = [strategy_spec(scheme=s, seed=None)
                 for s in ("asynchronous", "synchronized")]
        together = evaluate_in_context(ctx, specs, method="strategy")
        # A cell evaluated alone from the same root seed spawns the identical
        # seed block, so each scheme's numbers match its standalone run.
        for spec, evaluation in zip(specs, together):
            alone = evaluate_in_context(ExecutionContext(seed=5), [spec],
                                        method="strategy")[0]
            assert evaluation.to_dict() == alone.to_dict()

    def test_store_key_equality_with_rerun(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        spec = strategy_spec()
        fresh = evaluate_record(spec, method="strategy", store=store)
        again = evaluate_record(spec, method="strategy", store=store)
        assert not fresh.cells[0].cached and again.cells[0].cached
        assert fresh.cells[0].key == again.cells[0].key \
            == spec.canonical_key("strategy")
        assert again.cells[0].evaluation == fresh.cells[0].evaluation

    def test_evaluation_round_trips_through_store_encoding(self):
        evaluation = evaluate(strategy_spec(), method="strategy")
        rebuilt = Evaluation.from_experiment_result(
            evaluation.to_experiment_result())
        assert rebuilt.to_dict() == evaluation.to_dict()


class TestAssembledMetrics:
    def test_stderr_reported_for_averaged_metrics(self):
        evaluation = evaluate(strategy_spec(), method="strategy")
        assert "stderr_makespan" in evaluation.metrics
        assert evaluation.n_samples == 3

    def test_recovery_lines_total_is_a_sum(self):
        spec = strategy_spec(metrics=("recovery_lines",
                                      "recovery_lines_total"))
        evaluation = evaluate(spec, method="strategy")
        total = evaluation.metrics["recovery_lines_total"]
        assert total == pytest.approx(
            evaluation.metrics["recovery_lines"] * 3)
        assert total == int(total)

    def test_sync_loss_zero_for_schemes_without_waiting(self):
        evaluation = evaluate(strategy_spec(scheme="asynchronous"),
                              method="strategy")
        assert evaluation.metrics["sync_loss"] == 0.0

    def test_closed_forms_match_known_values(self):
        # n = 3, mu = 1: CL = n(H_n - 1) = 1.5n - ... = 2.5, E[Z] = H_3.
        evaluation = evaluate(
            strategy_spec(metrics=("sync_loss", "expected_wait")),
            method="analytic")
        assert evaluation.metrics["sync_loss"] == pytest.approx(2.5)
        assert evaluation.metrics["expected_wait"] == \
            pytest.approx(11.0 / 6.0)


class TestCliFace:
    def write_spec(self, tmp_path, payload):
        path = tmp_path / "strategy.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_eval_strategy_sweep_with_cache(self, tmp_path, capsys):
        from repro.__main__ import main
        spec_path = self.write_spec(tmp_path, {
            "system": {"kind": "strategy", "scheme": "synchronized", "n": 3,
                       "mu": 1.0, "lam": 1.0, "work": 10.0,
                       "error_rate": 0.04},
            "metrics": ["makespan", "slowdown", "sync_loss"],
            "reps": 2, "seed": 11,
            "sweep": {"scheme": ["asynchronous", "synchronized"]},
        })
        store = str(tmp_path / "store")
        assert main(["eval", spec_path, "--method", "strategy",
                     "--store", store]) == 0
        first = capsys.readouterr().out
        assert "scheme=asynchronous [strategy]" in first
        assert "0 served from the store" in first
        assert main(["eval", spec_path, "--method", "strategy",
                     "--store", store]) == 0
        assert "2 served from the store" in capsys.readouterr().out

    def test_eval_auto_resolves_closed_forms(self, tmp_path, capsys):
        from repro.__main__ import main
        spec_path = self.write_spec(tmp_path, {
            "system": {"kind": "strategy", "scheme": "synchronized", "n": 4,
                       "mu": 1.0, "lam": 0.5, "work": 10.0},
            "metrics": ["sync_loss", "expected_wait"],
        })
        assert main(["eval", spec_path]) == 0
        assert "analytic" in capsys.readouterr().out
