"""Determinism of the non-exponential failure-law machinery.

Golden hex snapshots pin the exact draw sequences of the new buffered
``weibull``/``lognormal`` stream helpers and of both renewal interval
samplers (so refactors cannot silently reshuffle the streams), the DES
*exponential* path is pinned too (the renewal additions must never perturb
it), and the strategy engine's bit-identity contracts — serial == process
pool, chunked == unchunked — are re-asserted for cells that carry a
``failure_law`` and a ``fault_model`` (mirroring
tests/api/test_strategy_chunking.py for the new axes).
"""

import pytest

from repro.api import StudySpec, evaluate
from repro.core.parameters import SystemParameters
from repro.markov.montecarlo import RenewalModelSimulator
from repro.sim.interval_sampler import DESIntervalSampler
from repro.sim.random_streams import RandomStreams


# --------------------------------------------------------------- golden hex
class TestGoldenStreamDraws:
    """First draws of the buffered law helpers, pinned bit for bit."""

    def test_weibull_stream(self):
        streams = RandomStreams(42)
        draws = [streams.weibull("rp.0", 2.0, 1.5) for _ in range(3)]
        assert [d.hex() for d in draws] == [
            "0x1.8952435d94744p-3",
            "0x1.6c2c330439ab0p+0",
            "0x1.d10a0e17f2f04p+0",
        ]

    def test_lognormal_stream(self):
        streams = RandomStreams(42)
        draws = [streams.lognormal("rp.1", 0.1, 0.5) for _ in range(3)]
        assert [d.hex() for d in draws] == [
            "0x1.1d3b32444b3c5p+1",
            "0x1.b897e108f1de9p-1",
            "0x1.5f39c9631b819p-2",
        ]

    def test_law_buffers_pin_their_parameters(self):
        streams = RandomStreams(1)
        streams.weibull("rp.0", 2.0, 1.5)
        with pytest.raises(ValueError):
            streams.weibull("rp.0", 2.5, 1.5)
        streams.lognormal("rp.1", 0.1, 0.5)
        with pytest.raises(ValueError):
            streams.lognormal("rp.1", 0.1, 0.6)


class TestGoldenSamplerIntervals:
    params = SystemParameters.symmetric(3, 1.0, 0.5)

    def test_des_weibull_lengths(self):
        sampler = DESIntervalSampler(self.params, seed=7,
                                     failure_law="weibull",
                                     failure_shape=2.0)
        lengths = sampler.sample_intervals(4).lengths
        assert [x.hex() for x in lengths] == [
            "0x1.32bb9a90f7f02p+0",
            "0x1.b834a7e77e5a4p+0",
            "0x1.b77317f472b82p+0",
            "0x1.9a580cc78bc60p+0",
        ]

    def test_des_exponential_path_is_unperturbed(self):
        """Regression: adding the renewal branch must never change the
        exponential sampler's draw sequence."""
        lengths = DESIntervalSampler(self.params,
                                     seed=7).sample_intervals(4).lengths
        assert [x.hex() for x in lengths] == [
            "0x1.20a63528ad050p+0",
            "0x1.00277c229a5d0p-3",
            "0x1.8288e186ad660p-4",
            "0x1.1ca9c3468b280p-5",
        ]

    def test_mc_lognormal_lengths(self):
        sampler = RenewalModelSimulator(self.params, seed=7,
                                        failure_law="lognormal",
                                        failure_shape=0.8)
        lengths = sampler.sample_intervals(4).lengths
        assert [x.hex() for x in lengths] == [
            "0x1.742784f2ddb9dp-1",
            "0x1.c4a33c23b7616p-2",
            "0x1.6138e33cc9ab4p-2",
            "0x1.fb5f9b5aa6ff8p-3",
        ]


# ----------------------------------------------------- strategy bit-identity
def renewal_strategy_payload(**overrides):
    payload = {
        "system": {"kind": "strategy", "scheme": "asynchronous", "n": 3,
                   "mu": 1.0, "lam": 1.0, "work": 10.0, "error_rate": 0.05,
                   "sync_interval": 2.0,
                   "failure_law": "weibull", "failure_shape": 0.8,
                   "fault_model": {"groups": [[0, 1]],
                                   "common_mode_rate": 0.1,
                                   "propagation_probability": 0.5,
                                   "cascade_depth": 2}},
        "metrics": ["makespan", "rollbacks", "total_saves"],
        "reps": 5,
        "seed": 99,
    }
    payload.update(overrides)
    return payload


class TestRenewalStrategyBitIdentity:
    def test_serial_equality_across_chunk_sizes(self):
        reference = evaluate(StudySpec.from_dict(renewal_strategy_payload()),
                             method="strategy").to_dict()
        for chunk in (1, 2, 64):
            spec = StudySpec.from_dict(renewal_strategy_payload(
                options={"rep_chunk": chunk}))
            assert evaluate(spec, method="strategy").to_dict() == reference, \
                f"rep_chunk={chunk} changed a renewal-law cell's results"

    def test_serial_equals_process_pool(self):
        serial = evaluate(StudySpec.from_dict(renewal_strategy_payload()),
                          method="strategy")
        pooled = evaluate(StudySpec.from_dict(renewal_strategy_payload()),
                          method="strategy", backend="process", workers=2)
        assert serial.to_dict() == pooled.to_dict()

    def test_mc_serial_equals_process_pool(self):
        payload = {
            "system": {"kind": "symmetric", "n": 3, "mu": 1.0, "lam": 0.5,
                       "failure_law": "weibull", "failure_shape": 2.0},
            "metrics": ["mean", "variance"], "reps": 400, "seed": 13,
        }
        serial = evaluate(StudySpec.from_dict(payload), method="mc")
        pooled = evaluate(StudySpec.from_dict(payload), method="mc",
                          backend="process", workers=2)
        assert serial.to_dict() == pooled.to_dict()
