"""Unit tests for workload specs, generators and trace replay."""

import numpy as np
import pytest

from repro.core.rollback import propagate_rollback
from repro.core.types import CheckpointKind
from repro.workloads.generators import (
    FIGURE6_CASES,
    TABLE1_CASES,
    homogeneous_workload,
    paper_figure6_case,
    paper_table1_case,
    pipeline_workload,
    realtime_control_workload,
)
from repro.workloads.spec import FaultModel, WorkloadSpec
from repro.workloads.trace import TraceEvent, TraceWorkload, figure1_trace, history_from_trace


class TestFaultModel:
    def test_defaults_disabled(self):
        assert not FaultModel().enabled

    def test_enabled_when_rate_positive(self):
        assert FaultModel(error_rate=0.1).enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(error_rate=-1.0)
        with pytest.raises(ValueError):
            FaultModel(external_detection_probability=1.5)


class TestWorkloadSpec:
    def test_defaults_and_helpers(self, params_case1):
        spec = WorkloadSpec(params=params_case1, work_per_process=10.0)
        assert spec.n_processes == 3
        assert spec.ideal_completion_time() == 10.0
        assert np.allclose(spec.expected_checkpoints_per_process(), 10.0)

    def test_with_faults_and_with_work_copies(self, params_case1):
        spec = WorkloadSpec(params=params_case1)
        modified = spec.with_faults(0.5).with_work(5.0).with_checkpoint_cost(0.1)
        assert modified.faults.error_rate == 0.5
        assert modified.work_per_process == 5.0
        assert modified.checkpoint_cost == 0.1
        assert spec.faults.error_rate == 0.0   # the original is untouched

    def test_validation(self, params_case1):
        with pytest.raises(ValueError):
            WorkloadSpec(params=params_case1, work_per_process=0.0)
        with pytest.raises(ValueError):
            WorkloadSpec(params=params_case1, checkpoint_cost=-0.1)


class TestPaperCases:
    def test_table1_case_parameters(self):
        params = paper_table1_case(2)
        assert np.allclose(params.mu, (1.5, 1.0, 0.5))
        assert params.pair_rate(0, 1) == 1.0

    def test_all_table1_cases_have_constant_rho(self):
        rhos = [paper_table1_case(c).rho for c in range(1, len(TABLE1_CASES) + 1)]
        assert np.allclose(rhos, rhos[0])

    def test_figure6_case_parameters(self):
        params = paper_figure6_case(3)
        assert np.allclose(params.mu, (0.6, 0.45, 0.45))
        assert params.pair_rate(1, 2) == 0.75

    def test_case_index_validation(self):
        with pytest.raises(ValueError):
            paper_table1_case(0)
        with pytest.raises(ValueError):
            paper_figure6_case(9)


class TestScenarioWorkloads:
    def test_homogeneous_workload_shape(self):
        spec = homogeneous_workload(n=4, mu=2.0, lam=0.5, work=30.0)
        assert spec.n_processes == 4
        assert spec.params.is_symmetric()
        assert spec.work_per_process == 30.0

    def test_pipeline_workload_topology(self):
        spec = pipeline_workload(n=4)
        assert spec.params.pair_rate(0, 1) > 0.0
        assert spec.params.pair_rate(0, 3) == 0.0
        assert spec.block_spec.depth == 2

    def test_realtime_workload_has_alternates_and_high_rate(self):
        spec = realtime_control_workload(n=3, cycle_rate=4.0, deadline=1.0)
        assert np.allclose(spec.params.mu, 4.0)
        assert spec.block_spec.depth == 3
        assert spec.faults.external_detection_probability < 1.0


class TestTraces:
    def test_trace_event_validation(self):
        with pytest.raises(ValueError):
            TraceEvent(time=1.0, kind="msg", process=0)          # missing peer
        with pytest.raises(ValueError):
            TraceEvent(time=1.0, kind="prp", process=0)          # missing origin
        with pytest.raises(ValueError):
            TraceEvent(time=1.0, kind="wat", process=0)

    def test_workload_sorts_events_and_checks_ranges(self):
        events = (TraceEvent(time=2.0, kind="rp", process=0),
                  TraceEvent(time=1.0, kind="rp", process=1))
        trace = TraceWorkload(name="t", n_processes=2, events=events)
        assert trace.events[0].time == 1.0
        assert trace.duration == 2.0
        with pytest.raises(ValueError):
            TraceWorkload(name="bad", n_processes=1, events=events)

    def test_history_from_trace_roundtrip(self):
        events = [TraceEvent(time=1.0, kind="rp", process=0),
                  TraceEvent(time=1.5, kind="msg", process=0, peer=1),
                  TraceEvent(time=2.0, kind="prp", process=1, origin=(0, 1))]
        history = history_from_trace(2, events)
        assert history.checkpoint_count(0, CheckpointKind.REGULAR) == 1
        assert history.checkpoint_count(1, CheckpointKind.PSEUDO) == 1
        assert len(history.interactions) == 1

    def test_figure1_trace_reproduces_paper_rollback(self):
        history = figure1_trace().to_history()
        result = propagate_rollback(history, failed_process=0, failure_time=6.2)
        assert set(result.affected) == {0, 1, 2}
        assert not result.domino
        # The restart layer is the early recovery line around t = 2.
        assert max(rp.time for rp in result.restart_points.values()) <= 2.1
