"""End-to-end integration tests tying the substrate to the paper's narrative."""

import numpy as np
import pytest

from repro.core.intervals import extract_intervals
from repro.core.recovery_line import ExactRecoveryLineDetector
from repro.core.rollback import propagate_rollback
from repro.experiments.strategy_comparison import run_scheme_replications, run_strategy_comparison
from repro.markov.recovery_line_interval import RecoveryLineIntervalModel
from repro.recovery.asynchronous import AsynchronousRuntime
from repro.recovery.pseudo import PseudoRecoveryPointRuntime
from repro.recovery.synchronized import SynchronizedRuntime
from repro.workloads.generators import homogeneous_workload, realtime_control_workload
from repro.workloads.trace import figure1_trace


class TestDominoNarrative:
    """E8: the Figure 1 story, executed end to end."""

    def test_domino_effect_without_checkpoints(self):
        # Processes that interact but never checkpoint roll back to the start.
        workload = homogeneous_workload(n=3, mu=1.0, lam=2.0, work=5.0,
                                        error_rate=0.0)
        history = figure1_trace().to_history()
        # Strip the recovery points: rolling back from the end must reach t=0.
        from repro.core.history import HistoryDiagram

        bare = HistoryDiagram(3)
        for interaction in history.interactions:
            bare.add_interaction(interaction.source, interaction.target,
                                 interaction.time)
        result = propagate_rollback(bare, failed_process=0, failure_time=6.2)
        assert result.domino
        assert result.max_distance == pytest.approx(6.2)

    def test_figure1_rollback_stops_at_recovery_line(self, figure1_history):
        result = propagate_rollback(figure1_history, 0, 6.2)
        lines = ExactRecoveryLineDetector().find_lines(figure1_history)
        restart_times = {pid: rp.time for pid, rp in result.restart_points.items()}
        # The restart assignment *is* one of the detected recovery lines.
        assert any({pid: rp.time for pid, rp in line.points.items()} == restart_times
                   for line in lines)


class TestAnalyticRuntimeAgreement:
    def test_async_runtime_checkpoint_rate_matches_mu(self, faultless_workload):
        report = AsynchronousRuntime(faultless_workload, seed=21).run()
        for process in report.processes:
            # Working time ~= work_per_process; checkpoints ~ Poisson(mu * work).
            expected = faultless_workload.params.mu[process.process] * \
                faultless_workload.work_per_process
            assert process.checkpoints_taken == pytest.approx(expected, rel=0.5)

    def test_async_runtime_interval_structure_matches_model(self):
        workload = homogeneous_workload(n=3, mu=1.0, lam=1.0, work=250.0,
                                        error_rate=0.0, checkpoint_cost=0.0)
        runtime = AsynchronousRuntime(workload, seed=23)
        runtime.run()
        observations = extract_intervals(runtime.tracer.history)
        measured = np.mean([obs.length for obs in observations])
        analytic = RecoveryLineIntervalModel(workload.params).mean_interval()
        assert measured == pytest.approx(analytic, rel=0.2)


class TestStrategyComparisonExperiment:
    def test_comparison_reports_all_schemes(self, small_workload):
        result = run_strategy_comparison(small_workload, replications=2,
                                         base_seed=40)
        assert [row.label for row in result.rows] == ["asynchronous", "synchronized",
                                                      "pseudo"]
        for row in result.rows:
            assert row.get("makespan") >= small_workload.ideal_completion_time()

    def test_sync_pays_waiting_others_do_not(self, small_workload):
        result = run_strategy_comparison(small_workload, replications=2,
                                         base_seed=41)
        assert result.row("synchronized").get("waiting_time") > 0.0
        assert result.row("asynchronous").get("waiting_time") == 0.0

    def test_async_uses_most_storage(self, small_workload):
        result = run_strategy_comparison(small_workload, replications=2,
                                         base_seed=42)
        assert result.row("asynchronous").get("peak_saved_states") >= \
            result.row("synchronized").get("peak_saved_states")

    def test_replication_helper_validates(self, small_workload):
        with pytest.raises(ValueError):
            run_scheme_replications("asynchronous", small_workload, replications=0)
        with pytest.raises(ValueError):
            run_scheme_replications("bogus", small_workload)


class TestRealtimeScenario:
    def test_realtime_workload_runs_under_all_schemes(self):
        workload = realtime_control_workload(n=3, work=10.0, error_rate=0.05)
        for cls in (AsynchronousRuntime, PseudoRecoveryPointRuntime):
            assert cls(workload, seed=3).run().completed
        assert SynchronizedRuntime(workload, seed=3, sync_interval=1.0).run().completed
